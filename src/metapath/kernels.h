#ifndef NETOUT_METAPATH_KERNELS_H_
#define NETOUT_METAPATH_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "graph/types.h"

namespace netout {

/// Runtime-dispatched numeric kernels behind the sparse-vector hot
/// loops (merge joins, reductions, frontier expansion, dense harvest).
///
/// Two implementations exist: a portable scalar one and an AVX2 one.
/// The active variant is selected ONCE, on first use: AVX2 when the CPU
/// supports it, overridable for A/B testing via the environment variable
/// `NETOUT_KERNELS=scalar|avx2` (an unsupported or unrecognized value
/// falls back to the auto pick with a warning on stderr).
///
/// Determinism contract (see DESIGN.md §10): for identical inputs, every
/// kernel produces BITWISE identical results across variants. SIMD is
/// used to accelerate index matching, run detection, and element-wise
/// products, never to reassociate a floating-point reduction differently
/// from the scalar variant: reductions in BOTH variants accumulate into
/// the same canonical 4-lane split (lane = position mod 4, final combine
/// (l0+l1)+(l2+l3)), and merge/expansion kernels perform the exact same
/// per-element operations in the same order. FMA contraction is never
/// enabled for kernel code.

enum class KernelVariant : std::uint8_t {
  kScalar = 0,
  kAvx2 = 1,
};

/// "scalar" / "avx2" — stable names used by NETOUT_KERNELS and the
/// BENCH_*.json artifacts.
const char* KernelVariantName(KernelVariant variant);

/// Function-pointer table over raw arrays. All index arrays are sorted
/// strictly ascending; output buffers are caller-preallocated to the
/// worst case documented per kernel.
struct KernelOps {
  /// Merge-join dot product. Matched products accumulate sequentially in
  /// ascending index order.
  double (*dot)(const LocalId* a_idx, const double* a_val, std::size_t a_n,
                const LocalId* b_idx, const double* b_val, std::size_t b_n);

  /// Canonical 4-lane reductions (see determinism contract above).
  double (*sum)(const double* values, std::size_t n);
  double (*l1)(const double* values, std::size_t n);
  double (*l2sq)(const double* values, std::size_t n);

  /// Sorted merge union out = a + scale * b into preallocated buffers of
  /// capacity a_n + b_n. Returns the number of entries written.
  std::size_t (*add_scaled)(const LocalId* a_idx, const double* a_val,
                            std::size_t a_n, const LocalId* b_idx,
                            const double* b_val, std::size_t b_n, double scale,
                            LocalId* out_idx, double* out_val);

  /// Dense scatter: dense[idx[k]] += weight * val[k] for k in [0, n).
  /// (Sparse-tracking accumulation stays inline in DenseAccumulator —
  /// its per-slot zero test and touched push defeat vectorization.)
  void (*add_span)(const LocalId* idx, const double* val, std::size_t n,
                   double weight, double* dense);

  /// dense[e.neighbor] += weight * e.count for each CSR entry (frontier
  /// expansion), dense scatter.
  void (*expand_row)(const CsrEntry* entries, std::size_t n, double weight,
                     double* dense);

  /// Number of slots with dense[i] != 0.0 (NaN counts; -0.0 does not).
  std::size_t (*harvest_count)(const double* dense, std::size_t n);

  /// Writes the (index, value) pairs of all non-zero slots in ascending
  /// index order into buffers sized by harvest_count, zeroing the dense
  /// array as it goes (every slot is exactly +0.0 afterwards).
  void (*harvest_fill)(double* dense, std::size_t n, LocalId* out_idx,
                       double* out_val);
};

/// True when the host CPU (and build target) can run the AVX2 variant.
bool CpuSupportsAvx2();

/// Table for an explicit variant. Requesting kAvx2 on a host without
/// AVX2 support returns the scalar table (callers that care should check
/// CpuSupportsAvx2() first — the property tests do).
const KernelOps& GetKernelOps(KernelVariant variant);

/// The variant selected for this process (env override applied once).
KernelVariant ActiveKernelVariant();

/// Table of the active variant — what the hot paths call.
const KernelOps& ActiveKernels();

}  // namespace netout

#endif  // NETOUT_METAPATH_KERNELS_H_
