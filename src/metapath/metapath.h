#ifndef NETOUT_METAPATH_METAPATH_H_
#define NETOUT_METAPATH_METAPATH_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "graph/schema.h"
#include "graph/types.h"

namespace netout {

/// A meta-path (Definition 2): an ordered sequence of vertex types
/// P = (T0 T1 ... Tl), resolved against a schema so that every hop
/// carries the concrete edge type and traversal direction.
///
/// Meta-paths are immutable value types supporting the paper's two
/// operators: reversal (Definition 3) and concatenation (Definition 4).
class MetaPath {
 public:
  MetaPath() = default;

  /// Resolves a type sequence. Each consecutive pair must be connected by
  /// exactly one edge step (Schema::ResolveStep); pass explicit edge
  /// names in `edge_names` (empty string = auto-resolve, one entry per
  /// hop, or an empty vector for all-auto) to disambiguate.
  static Result<MetaPath> Create(const Schema& schema,
                                 std::vector<TypeId> types,
                                 std::vector<std::string> edge_names = {});

  /// Parses dot syntax: "author.paper.venue". A segment may carry an
  /// explicit edge annotation for the hop *into* it:
  /// "paper.paper[cites]" follows the `cites` edge type forward or
  /// backward into the second `paper`.
  static Result<MetaPath> Parse(const Schema& schema, std::string_view text);

  /// Builds from an exact resolved step sequence (the vertex types are
  /// derived from the steps). Consecutive steps must chain. This is the
  /// only way to express the orientation of a self-relation explicitly.
  static Result<MetaPath> FromSteps(const Schema& schema,
                                    std::vector<EdgeStep> steps);

  /// Number of hops l (types().size() - 1). A single-type path has
  /// length 0 and is valid (it denotes the identity relation).
  std::size_t length() const { return steps_.size(); }

  TypeId source_type() const { return types_.front(); }
  TypeId target_type() const { return types_.back(); }

  const std::vector<TypeId>& types() const { return types_; }
  const std::vector<EdgeStep>& steps() const { return steps_; }

  /// P⁻¹ = (Tl ... T0), each hop direction flipped.
  MetaPath Reverse() const;

  /// (P1 P2); requires target_type() == other.source_type().
  Result<MetaPath> Concat(const MetaPath& other) const;

  /// Psym = (P P⁻¹): the symmetric meta-path used by normalized
  /// connectivity (Section 5.1). Always concatenable.
  MetaPath Symmetric() const;

  /// "author.paper.venue" (with edge annotations where they were given).
  std::string ToString(const Schema& schema) const;

  friend bool operator==(const MetaPath& a, const MetaPath& b) {
    return a.types_ == b.types_ && a.steps_ == b.steps_;
  }

 private:
  std::vector<TypeId> types_;   // length l+1; never empty once created
  std::vector<EdgeStep> steps_; // length l
};

/// A feature meta-path with its user-assigned weight (the JUDGED BY list
/// entries; weight defaults to 1 per Section 4.2).
struct WeightedMetaPath {
  MetaPath path;
  double weight = 1.0;
};

}  // namespace netout

#endif  // NETOUT_METAPATH_METAPATH_H_
