#ifndef NETOUT_METAPATH_SPARSE_VECTOR_H_
#define NETOUT_METAPATH_SPARSE_VECTOR_H_

#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "graph/csr.h"
#include "graph/types.h"

namespace netout {

/// Non-owning view over a sparse vector: parallel arrays of sorted,
/// unique indices and their values. Both SparseVector and RelationMatrix
/// rows convert to this, so the numeric kernels below work on either.
struct SparseVecView {
  std::span<const LocalId> indices;
  std::span<const double> values;

  std::size_t nnz() const { return indices.size(); }
  bool empty() const { return indices.empty(); }

  /// Debug-build check that indices are strictly increasing (the merge
  /// kernels above silently produce garbage on unsorted input). No-op
  /// when NDEBUG is defined.
  void DebugCheckSorted() const;
};

/// An owned sparse vector over the type-local id space of one vertex type
/// (the paper's neighbor vector, Definition 7): index j holds
/// |π_P(v, v_j)|, the number of path instances of the meta-path from v to
/// vertex j of the terminal type.
///
/// Values are doubles: raw path counts are integral, but weighted
/// meta-path combinations and normalized scores are not.
class SparseVector {
 public:
  SparseVector() = default;

  /// Builds from possibly-unsorted, possibly-duplicated (index, value)
  /// pairs; duplicates are summed, zero sums are kept (callers that care
  /// should Prune()).
  static SparseVector FromPairs(
      std::vector<std::pair<LocalId, double>> pairs);

  /// Builds from already-sorted unique parallel arrays (fast path used by
  /// the traversal engine). Aborts in debug if unsorted.
  static SparseVector FromSorted(std::vector<LocalId> indices,
                                 std::vector<double> values);

  SparseVecView View() const {
    return SparseVecView{std::span<const LocalId>(indices_),
                         std::span<const double>(values_)};
  }

  std::size_t nnz() const { return indices_.size(); }
  bool empty() const { return indices_.empty(); }

  /// Value at `index`, 0.0 if absent. O(log nnz).
  double ValueAt(LocalId index) const;

  std::span<const LocalId> indices() const { return indices_; }
  std::span<const double> values() const { return values_; }

  /// Removes entries with value exactly 0.
  void Prune();

  /// Multiplies every value by `factor` in place.
  void Scale(double factor);

  /// Approximate heap footprint in bytes (index-size accounting).
  std::size_t MemoryBytes() const {
    return indices_.capacity() * sizeof(LocalId) +
           values_.capacity() * sizeof(double);
  }

  /// "[3:1, 7:2.5]" — debugging/test aid.
  std::string ToString() const;

  friend bool operator==(const SparseVector& a, const SparseVector& b) {
    return a.indices_ == b.indices_ && a.values_ == b.values_;
  }

 private:
  std::vector<LocalId> indices_;
  std::vector<double> values_;
};

/// Dot product of two sparse views (merge join on sorted indices).
double Dot(SparseVecView a, SparseVecView b);

/// Sum of values / sum of |values|.
double Sum(SparseVecView v);
double L1Norm(SparseVecView v);

/// Squared Euclidean norm. For a neighbor vector under meta-path P this
/// equals |π_{PP⁻¹}(v,v)| — the vertex's *visibility* (Section 5.1).
double L2NormSquared(SparseVecView v);

/// a + scale * b as a new vector (merge join).
SparseVector AddScaled(SparseVecView a, SparseVecView b, double scale);

/// Cosine similarity; 0 when either vector is all-zero.
double CosineSimilarity(SparseVecView a, SparseVecView b);

/// Reusable dense accumulator for building sparse vectors over a fixed
/// dimension (one vertex type). Add() is O(1); Harvest() emits a sorted
/// SparseVector and resets. The workspace persists across calls so
/// repeated materializations avoid reallocating the dense array.
///
/// Two harvesting regimes: while the touched set is small relative to
/// the dimension, touched indices are tracked and Harvest sorts them
/// (O(t log t)). Once the touched count crosses dimension/16 the
/// accumulator flips to dense mode — tracking stops (adds become a pure
/// scatter) and Harvest scans the whole dense array with the vectorized
/// harvest kernels, which is both cheaper than the sort at that density
/// and branch-light. Both regimes produce identical vectors.
class DenseAccumulator {
 public:
  /// Grows the dense workspace to `dimension` slots if needed.
  void Resize(std::size_t dimension);

  void Add(LocalId index, double value);

  /// Bulk add of a sorted unique (index, value) span scaled by `weight`:
  /// dense[idx[k]] += weight * val[k]. Kernel-dispatched.
  void AddSpan(std::span<const LocalId> indices, std::span<const double> values,
               double weight);

  /// Frontier expansion: dense[e.neighbor] += weight * e.count for every
  /// entry of a CSR row. Kernel-dispatched.
  void AddRow(std::span<const CsrEntry> row, double weight);

  /// True if no slot has been touched since the last Harvest/Clear.
  bool IsEmpty() const { return touched_.empty() && !dense_mode_; }

  std::size_t dimension() const { return dense_.size(); }

  double ValueAt(LocalId index) const { return dense_[index]; }

  /// Emits the accumulated vector (sorted) and clears the workspace.
  SparseVector Harvest();

  /// Clears without emitting.
  void Clear();

 private:
  void NoteTouched(LocalId index) {
    touched_.push_back(index);
    if (touched_.size() >= dense_switch_) dense_mode_ = true;
  }

  std::vector<double> dense_;
  std::vector<LocalId> touched_;
  /// Touched count at which tracking stops and Harvest switches to a
  /// full dense scan.
  std::size_t dense_switch_ = 0;
  bool dense_mode_ = false;
};

}  // namespace netout

#endif  // NETOUT_METAPATH_SPARSE_VECTOR_H_
