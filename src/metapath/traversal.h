#ifndef NETOUT_METAPATH_TRAVERSAL_H_
#define NETOUT_METAPATH_TRAVERSAL_H_

#include <span>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "graph/hin.h"
#include "metapath/metapath.h"
#include "metapath/sparse_vector.h"

namespace netout {

/// Materializes neighbor vectors by frontier-propagation over the CSR
/// adjacency: for each hop, next[u] += frontier[w] * multiplicity(w, u).
/// This counts *path instances* (Definition 5), so the j-th output entry
/// is exactly |π_P(v, v_j)|.
///
/// The counter keeps one dense workspace per vertex type and reuses it
/// across calls; it is cheap to hold for the lifetime of a query engine
/// but is NOT thread-safe — use one PathCounter per thread.
class PathCounter {
 public:
  explicit PathCounter(HinPtr hin);

  /// φ_P(v): path-instance counts from `v` along `path`. Requires
  /// v.type == path.source_type(). A length-0 path yields the unit
  /// vector at v.
  Result<SparseVector> NeighborVector(VertexRef v, const MetaPath& path);

  /// Propagates an arbitrary starting frontier (over path.source_type())
  /// along the path: result = frontierᵀ · M_P. Used by the decomposition
  /// evaluator for trailing odd hops and by tests.
  Result<SparseVector> Propagate(const SparseVector& frontier,
                                 const MetaPath& path);

  /// Propagates `frontier` (over the step's source type) one hop.
  SparseVector PropagateStep(const SparseVector& frontier,
                             const EdgeStep& step);

  /// Neighborhood N_P(v) (Definition 6): vertices of the terminal type
  /// reachable by at least one path instance.
  Result<std::vector<VertexRef>> Neighborhood(VertexRef v,
                                              const MetaPath& path);

  const Hin& hin() const { return *hin_; }

  /// Installs (or clears, with nullptr) a cooperative stop token: the
  /// multi-hop entry points poll it between hops and fail with the
  /// token's stop status instead of starting the next propagation.
  /// PropagateStep itself never polls — one hop is the stop granularity.
  /// `token` is borrowed and must outlive its installation.
  void SetStopToken(const CancellationToken* token) { stop_token_ = token; }

 private:
  // Runs the hops of `path` starting from a frontier already loaded into
  // acc_[path.source_type() workspace]; leaves the result as a harvested
  // vector. Polls the stop token once per hop.
  Result<SparseVector> RunHops(SparseVector frontier,
                               std::span<const EdgeStep> steps);

  HinPtr hin_;
  const CancellationToken* stop_token_ = nullptr;
  // One reusable dense accumulator per vertex type.
  std::vector<DenseAccumulator> acc_;
};

}  // namespace netout

#endif  // NETOUT_METAPATH_TRAVERSAL_H_
