#include "metapath/kernels.h"

#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define NETOUT_HAS_AVX2_KERNELS 1
#else
#define NETOUT_HAS_AVX2_KERNELS 0
#endif

namespace netout {
namespace {

// ---------------------------------------------------------------------------
// Scalar variant. The loop shapes here are the determinism reference:
// the AVX2 variant below must perform the same per-element operations in
// the same order (see the contract in kernels.h).
// ---------------------------------------------------------------------------

double DotScalar(const LocalId* a_idx, const double* a_val, std::size_t a_n,
                 const LocalId* b_idx, const double* b_val, std::size_t b_n) {
  double total = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a_n && j < b_n) {
    if (a_idx[i] < b_idx[j]) {
      ++i;
    } else if (a_idx[i] > b_idx[j]) {
      ++j;
    } else {
      total += a_val[i] * b_val[j];
      ++i;
      ++j;
    }
  }
  return total;
}

// Canonical 4-lane reduction: lane = position mod 4, fixed final
// combine. Both variants share this exact association.
double SumScalar(const double* values, std::size_t n) {
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    lane[0] += values[i];
    lane[1] += values[i + 1];
    lane[2] += values[i + 2];
    lane[3] += values[i + 3];
  }
  for (; i < n; ++i) lane[i % 4] += values[i];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

double L1Scalar(const double* values, std::size_t n) {
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    lane[0] += std::abs(values[i]);
    lane[1] += std::abs(values[i + 1]);
    lane[2] += std::abs(values[i + 2]);
    lane[3] += std::abs(values[i + 3]);
  }
  for (; i < n; ++i) lane[i % 4] += std::abs(values[i]);
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

double L2sqScalar(const double* values, std::size_t n) {
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    lane[0] += values[i] * values[i];
    lane[1] += values[i + 1] * values[i + 1];
    lane[2] += values[i + 2] * values[i + 2];
    lane[3] += values[i + 3] * values[i + 3];
  }
  for (; i < n; ++i) lane[i % 4] += values[i] * values[i];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

std::size_t AddScaledScalar(const LocalId* a_idx, const double* a_val,
                            std::size_t a_n, const LocalId* b_idx,
                            const double* b_val, std::size_t b_n, double scale,
                            LocalId* out_idx, double* out_val) {
  // Plain three-way merge into preallocated buffers: the old
  // push_back-based union spent most of its time in vector growth
  // bookkeeping. (Branchless cmov-select and skip-ahead formulations
  // were both measured and both lose: the selects serialize the loop on
  // the index-advance dependency chain, and skip-ahead loses on
  // interleaved inputs. Both kernel variants share this merge.)
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t o = 0;
  while (i < a_n && j < b_n) {
    const LocalId x = a_idx[i];
    const LocalId y = b_idx[j];
    if (x < y) {
      out_idx[o] = x;
      out_val[o] = a_val[i];
      ++i;
    } else if (y < x) {
      out_idx[o] = y;
      out_val[o] = scale * b_val[j];
      ++j;
    } else {
      out_idx[o] = x;
      out_val[o] = a_val[i] + scale * b_val[j];
      ++i;
      ++j;
    }
    ++o;
  }
  if (i < a_n) {
    std::memcpy(out_idx + o, a_idx + i, (a_n - i) * sizeof(LocalId));
    std::memcpy(out_val + o, a_val + i, (a_n - i) * sizeof(double));
    o += a_n - i;
  }
  for (; j < b_n; ++j, ++o) {
    out_idx[o] = b_idx[j];
    out_val[o] = scale * b_val[j];
  }
  return o;
}

void AddSpanScalar(const LocalId* idx, const double* val, std::size_t n,
                   double weight, double* dense) {
  for (std::size_t k = 0; k < n; ++k) {
    dense[idx[k]] += weight * val[k];
  }
}

void ExpandRowScalar(const CsrEntry* entries, std::size_t n, double weight,
                     double* dense) {
  for (std::size_t k = 0; k < n; ++k) {
    dense[entries[k].neighbor] +=
        weight * static_cast<double>(entries[k].count);
  }
}

std::size_t HarvestCountScalar(const double* dense, std::size_t n) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (dense[i] != 0.0) ++count;
  }
  return count;
}

void HarvestFillScalar(double* dense, std::size_t n, LocalId* out_idx,
                       double* out_val) {
  std::size_t o = 0;
  for (std::size_t i = 0; i < n; ++i) {
    // Store back only when the slot's bit pattern is not +0.0 (covers
    // real values, NaN, and -0.0 normalization) — an unconditional zero
    // store would dirty the whole workspace on every harvest.
    std::uint64_t bits;
    std::memcpy(&bits, &dense[i], sizeof(bits));
    if (bits == 0) continue;
    if (dense[i] != 0.0) {
      out_idx[o] = static_cast<LocalId>(i);
      out_val[o] = dense[i];
      ++o;
    }
    dense[i] = 0.0;
  }
}

constexpr KernelOps kScalarOps = {
    DotScalar,        SumScalar,          L1Scalar,
    L2sqScalar,       AddScaledScalar,    AddSpanScalar,
    ExpandRowScalar,  HarvestCountScalar, HarvestFillScalar,
};

#if NETOUT_HAS_AVX2_KERNELS

// ---------------------------------------------------------------------------
// AVX2 variant. Index comparisons on uint32 use the classic sign-bias
// trick (xor 0x80000000) so signed epi32 compares order them correctly.
// Sorted inputs make every lane mask a contiguous prefix, so popcount /
// countr_one give exact run lengths.
// ---------------------------------------------------------------------------

[[gnu::target("avx2")]]
inline __m256i Bias() {
  return _mm256_set1_epi32(static_cast<int>(0x80000000u));
}

// Gallop flavor for strongly asymmetric inputs (a much sparser than b):
// walk a element-wise and skip ahead in b eight indices at a time.
[[gnu::target("avx2")]]
double DotGallopAvx2(const LocalId* a_idx, const double* a_val,
                     std::size_t a_n, const LocalId* b_idx,
                     const double* b_val, std::size_t b_n) {
  double total = 0.0;
  const __m256i bias = Bias();
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a_n) {
    const LocalId target = a_idx[i];
    const __m256i vt = _mm256_xor_si256(
        _mm256_set1_epi32(static_cast<int>(target)), bias);
    while (j + 8 <= b_n) {
      const __m256i vb = _mm256_xor_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b_idx + j)),
          bias);
      const __m256i lt = _mm256_cmpgt_epi32(vt, vb);  // b < target lanes
      const unsigned mask = static_cast<unsigned>(
          _mm256_movemask_ps(_mm256_castsi256_ps(lt)));
      if (mask == 0xFFu) {
        j += 8;
        continue;
      }
      j += static_cast<std::size_t>(std::popcount(mask));
      break;
    }
    while (j < b_n && b_idx[j] < target) ++j;
    if (j >= b_n) break;
    if (b_idx[j] == target) {
      total += a_val[i] * b_val[j];
      ++j;
    }
    ++i;
  }
  return total;
}

[[gnu::target("avx2")]]
double DotAvx2(const LocalId* a_idx, const double* a_val, std::size_t a_n,
               const LocalId* b_idx, const double* b_val, std::size_t b_n) {
  // Matches accumulate into `total` in ascending index order and each
  // product is commutative, so both flavors below are bit-identical to
  // the scalar merge.
  if (a_n > b_n) {
    const LocalId* ti = a_idx;
    a_idx = b_idx;
    b_idx = ti;
    const double* tv = a_val;
    a_val = b_val;
    b_val = tv;
    const std::size_t tn = a_n;
    a_n = b_n;
    b_n = tn;
  }
  if (a_n * 8 <= b_n) {
    return DotGallopAvx2(a_idx, a_val, a_n, b_idx, b_val, b_n);
  }
  // Comparable sizes: 4x4 block intersection. Compare a block of four a
  // indices against all rotations of four b indices; uniqueness means
  // each a lane matches at most one b lane. Advancing the block whose
  // max is smaller never skips a match (any b equal to a remaining a is
  // bounded by that max and thus inside the compared block).
  double total = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i + 4 <= a_n && j + 4 <= b_n) {
    const __m128i va = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(a_idx + i));
    const __m128i vb = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(b_idx + j));
    const unsigned m0 = static_cast<unsigned>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(va, vb))));
    const unsigned m1 = static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(
        _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x39)))));  // (1,2,3,0)
    const unsigned m2 = static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(
        _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x4E)))));  // (2,3,0,1)
    const unsigned m3 = static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(
        _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x93)))));  // (3,0,1,2)
    if ((m0 | m1 | m2 | m3) != 0) {
      for (unsigned l = 0; l < 4; ++l) {
        unsigned bl;
        if ((m0 >> l) & 1u) {
          bl = l;
        } else if ((m1 >> l) & 1u) {
          bl = (l + 1) & 3u;
        } else if ((m2 >> l) & 1u) {
          bl = (l + 2) & 3u;
        } else if ((m3 >> l) & 1u) {
          bl = (l + 3) & 3u;
        } else {
          continue;
        }
        total += a_val[i + l] * b_val[j + bl];
      }
    }
    const LocalId a_max = a_idx[i + 3];
    const LocalId b_max = b_idx[j + 3];
    if (a_max <= b_max) i += 4;
    if (b_max <= a_max) j += 4;
  }
  // Scalar merge over the remainders.
  while (i < a_n && j < b_n) {
    if (a_idx[i] < b_idx[j]) {
      ++i;
    } else if (a_idx[i] > b_idx[j]) {
      ++j;
    } else {
      total += a_val[i] * b_val[j];
      ++i;
      ++j;
    }
  }
  return total;
}

[[gnu::target("avx2")]]
double SumAvx2(const double* values, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(values + i));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  for (; i < n; ++i) lane[i % 4] += values[i];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

[[gnu::target("avx2")]]
double L1Avx2(const double* values, std::size_t n) {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc,
                        _mm256_andnot_pd(sign_mask, _mm256_loadu_pd(values + i)));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  for (; i < n; ++i) lane[i % 4] += std::abs(values[i]);
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

[[gnu::target("avx2")]]
double L2sqAvx2(const double* values, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(values + i);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(v, v));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  for (; i < n; ++i) lane[i % 4] += values[i] * values[i];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

// No AVX2 flavor of add_scaled: a merge union writes one output per
// element through data-dependent advances, and every SIMD/branchless
// formulation measured (run detection, lookahead skip-ahead, cmov
// selects) lost to the plain three-way merge on interleaved inputs. The
// AVX2 table reuses the scalar kernel; its speedup over the pre-kernel
// implementation comes from the preallocated output buffers.

[[gnu::target("avx2")]]
void AddSpanAvx2(const LocalId* idx, const double* val, std::size_t n,
                 double weight, double* dense) {
  // Vectorize the products, scatter scalar. Indices within one span are
  // unique, so the four adds never alias.
  const __m256d vw = _mm256_set1_pd(weight);
  alignas(32) double prod[4];
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    _mm256_store_pd(prod, _mm256_mul_pd(vw, _mm256_loadu_pd(val + k)));
    dense[idx[k]] += prod[0];
    dense[idx[k + 1]] += prod[1];
    dense[idx[k + 2]] += prod[2];
    dense[idx[k + 3]] += prod[3];
  }
  for (; k < n; ++k) dense[idx[k]] += weight * val[k];
}

[[gnu::target("avx2")]]
void ExpandRowAvx2(const CsrEntry* entries, std::size_t n, double weight,
                   double* dense) {
  // CsrEntry is {u32 neighbor, u32 count}; a 256-bit load covers four
  // entries. Counts sit in the odd epi32 lanes — gather them, convert to
  // double, multiply by the weight, scatter scalar. cvtepi32_pd is a
  // signed convert, so entries with count >= 2^31 (never produced by
  // realistic multiplicities, but allowed by the format) take the scalar
  // path for their block.
  static_assert(sizeof(CsrEntry) == 8);
  const __m256d vw = _mm256_set1_pd(weight);
  const __m256i count_lanes = _mm256_setr_epi32(1, 3, 5, 7, 0, 0, 0, 0);
  alignas(32) double prod[4];
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m256i raw = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(entries + k));
    const unsigned high = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(raw)));
    if ((high & 0xAAu) != 0) {  // a count with its top bit set
      for (std::size_t t = 0; t < 4; ++t) {
        dense[entries[k + t].neighbor] +=
            weight * static_cast<double>(entries[k + t].count);
      }
      continue;
    }
    const __m256i counts = _mm256_permutevar8x32_epi32(raw, count_lanes);
    const __m256d cd = _mm256_cvtepi32_pd(_mm256_castsi256_si128(counts));
    _mm256_store_pd(prod, _mm256_mul_pd(vw, cd));
    dense[entries[k].neighbor] += prod[0];
    dense[entries[k + 1].neighbor] += prod[1];
    dense[entries[k + 2].neighbor] += prod[2];
    dense[entries[k + 3].neighbor] += prod[3];
  }
  for (; k < n; ++k) {
    dense[entries[k].neighbor] +=
        weight * static_cast<double>(entries[k].count);
  }
}

[[gnu::target("avx2")]]
std::size_t HarvestCountAvx2(const double* dense, std::size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(dense + i);
    const __m256d neq = _mm256_cmp_pd(v, zero, _CMP_NEQ_UQ);
    count += static_cast<std::size_t>(
        std::popcount(static_cast<unsigned>(_mm256_movemask_pd(neq))));
  }
  for (; i < n; ++i) {
    if (dense[i] != 0.0) ++count;
  }
  return count;
}

[[gnu::target("avx2")]]
void HarvestFillAvx2(double* dense, std::size_t n, LocalId* out_idx,
                     double* out_val) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256i izero = _mm256_setzero_si256();
  std::size_t o = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Skip blocks whose bit pattern is exactly +0.0 in every lane; a
    // lane holding a value, NaN, or -0.0 forces the emit/normalize path
    // (mirrors the scalar kernel's lazy store).
    const __m256i bits = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(dense + i));
    const unsigned nonzero_bits = static_cast<unsigned>(_mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(bits, izero))));
    if (nonzero_bits == 0xFu) continue;
    const __m256d v = _mm256_castsi256_pd(bits);
    unsigned mask = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(v, zero, _CMP_NEQ_UQ)));
    if (mask != 0) {
      alignas(32) double lane[4];
      _mm256_store_pd(lane, v);
      while (mask != 0) {
        const unsigned l = static_cast<unsigned>(std::countr_zero(mask));
        out_idx[o] = static_cast<LocalId>(i + l);
        out_val[o] = lane[l];
        ++o;
        mask &= mask - 1;
      }
    }
    _mm256_storeu_pd(dense + i, zero);
  }
  for (; i < n; ++i) {
    std::uint64_t bits;
    std::memcpy(&bits, &dense[i], sizeof(bits));
    if (bits == 0) continue;
    if (dense[i] != 0.0) {
      out_idx[o] = static_cast<LocalId>(i);
      out_val[o] = dense[i];
      ++o;
    }
    dense[i] = 0.0;
  }
}

constexpr KernelOps kAvx2Ops = {
    DotAvx2,        SumAvx2,          L1Avx2,
    L2sqAvx2,       AddScaledScalar,  AddSpanAvx2,
    ExpandRowAvx2,  HarvestCountAvx2, HarvestFillAvx2,
};

#endif  // NETOUT_HAS_AVX2_KERNELS

KernelVariant SelectVariant() {
  const bool avx2 = CpuSupportsAvx2();
  const char* env = std::getenv("NETOUT_KERNELS");
  if (env != nullptr && *env != '\0') {
    const std::string_view requested(env);
    if (requested == "scalar") return KernelVariant::kScalar;
    if (requested == "avx2") {
      if (avx2) return KernelVariant::kAvx2;
      std::fprintf(stderr,
                   "netout: NETOUT_KERNELS=avx2 requested but this host "
                   "cannot run AVX2; using scalar kernels\n");
      return KernelVariant::kScalar;
    }
    std::fprintf(stderr,
                 "netout: ignoring unrecognized NETOUT_KERNELS='%s' "
                 "(expected scalar|avx2)\n",
                 env);
  }
  return avx2 ? KernelVariant::kAvx2 : KernelVariant::kScalar;
}

}  // namespace

const char* KernelVariantName(KernelVariant variant) {
  switch (variant) {
    case KernelVariant::kScalar:
      return "scalar";
    case KernelVariant::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool CpuSupportsAvx2() {
#if NETOUT_HAS_AVX2_KERNELS
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const KernelOps& GetKernelOps(KernelVariant variant) {
#if NETOUT_HAS_AVX2_KERNELS
  if (variant == KernelVariant::kAvx2 && CpuSupportsAvx2()) return kAvx2Ops;
#else
  (void)variant;
#endif
  return kScalarOps;
}

KernelVariant ActiveKernelVariant() {
  static const KernelVariant variant = SelectVariant();
  return variant;
}

const KernelOps& ActiveKernels() {
  static const KernelOps& ops = GetKernelOps(ActiveKernelVariant());
  return ops;
}

}  // namespace netout
