#ifndef NETOUT_METAPATH_MATRIX_H_
#define NETOUT_METAPATH_MATRIX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "graph/hin.h"
#include "metapath/metapath.h"
#include "metapath/sparse_vector.h"

namespace netout {

/// A materialized meta-path relation: row r is the neighbor vector
/// φ_P(v_r) of source vertex r, stored CSR-style with double counts.
/// The pre-materialization index stores one RelationMatrix per length-2
/// meta-path (Section 6.2).
class RelationMatrix {
 public:
  RelationMatrix() : offsets_(1, 0) {}

  /// Materializes the full relation of `path` over `hin` by propagating
  /// every source vertex. O(Σ_v traversal(v)). Polls `stop` (when
  /// non-null) between source rows and fails with its stop status.
  static Result<RelationMatrix> Materialize(
      const Hin& hin, const MetaPath& path,
      const CancellationToken* stop = nullptr);

  /// Neighbor vector of source row `row` as a view (no copy).
  SparseVecView Row(LocalId row) const {
    if (row + 1 >= offsets_.size()) return {};
    const std::size_t begin = offsets_[row];
    const std::size_t end = offsets_[row + 1];
    return SparseVecView{
        std::span<const LocalId>(cols_.data() + begin, end - begin),
        std::span<const double>(vals_.data() + begin, end - begin)};
  }

  std::size_t num_rows() const { return offsets_.size() - 1; }
  std::size_t num_entries() const { return cols_.size(); }

  /// Column-space dimension: the col type's vertex count when built via
  /// Materialize, max column id + 1 when rebuilt from raw arrays. Every
  /// row entry is strictly below this bound.
  std::size_t num_cols() const { return num_cols_; }

  TypeId row_type() const { return row_type_; }
  TypeId col_type() const { return col_type_; }

  /// The reversed relation: out[c][r] = this[r][c]. Row r of the result
  /// is φ_{P⁻¹}(v_r); used when building a relation segment in the
  /// cheaper direction and flipping it. O(entries).
  RelationMatrix Transpose() const;

  /// Heap footprint in bytes (Figure 5b index-size accounting).
  std::size_t MemoryBytes() const {
    return offsets_.capacity() * sizeof(std::uint64_t) +
           cols_.capacity() * sizeof(LocalId) +
           vals_.capacity() * sizeof(double);
  }

  /// Raw access for serialization.
  const std::vector<std::uint64_t>& offsets() const { return offsets_; }
  const std::vector<LocalId>& cols() const { return cols_; }
  const std::vector<double>& vals() const { return vals_; }

  /// Rebuilds from raw arrays (deserialization). Fails with kCorruption
  /// if the arrays are inconsistent.
  static Result<RelationMatrix> FromRaw(TypeId row_type, TypeId col_type,
                                        std::vector<std::uint64_t> offsets,
                                        std::vector<LocalId> cols,
                                        std::vector<double> vals);

 private:
  TypeId row_type_ = kInvalidTypeId;
  TypeId col_type_ = kInvalidTypeId;
  std::size_t num_cols_ = 0;
  std::vector<std::uint64_t> offsets_;
  std::vector<LocalId> cols_;
  std::vector<double> vals_;
};

/// vecᵀ · M — propagates a frontier over a materialized relation:
/// result[u] = Σ_j vec[j] * M[j][u]. This is the decomposition step of
/// Section 6.2 ("multiplication of indexed vectors").
SparseVector MultiplyRowVector(const SparseVector& vec,
                               const RelationMatrix& matrix,
                               DenseAccumulator* acc);

}  // namespace netout

#endif  // NETOUT_METAPATH_MATRIX_H_
