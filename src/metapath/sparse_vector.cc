#include "metapath/sparse_vector.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"
#include "metapath/kernels.h"

namespace netout {

void SparseVecView::DebugCheckSorted() const {
#ifndef NDEBUG
  NETOUT_CHECK(indices.size() == values.size());
  for (std::size_t i = 1; i < indices.size(); ++i) {
    NETOUT_CHECK(indices[i - 1] < indices[i])
        << "sparse view requires strictly increasing indices";
  }
#endif
}

SparseVector SparseVector::FromPairs(
    std::vector<std::pair<LocalId, double>> pairs) {
  std::sort(pairs.begin(), pairs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  SparseVector out;
  out.indices_.reserve(pairs.size());
  out.values_.reserve(pairs.size());
  std::size_t i = 0;
  while (i < pairs.size()) {
    const LocalId index = pairs[i].first;
    double value = 0.0;
    while (i < pairs.size() && pairs[i].first == index) {
      value += pairs[i].second;
      ++i;
    }
    out.indices_.push_back(index);
    out.values_.push_back(value);
  }
  return out;
}

SparseVector SparseVector::FromSorted(std::vector<LocalId> indices,
                                      std::vector<double> values) {
  NETOUT_CHECK(indices.size() == values.size());
#ifndef NDEBUG
  for (std::size_t i = 1; i < indices.size(); ++i) {
    NETOUT_CHECK(indices[i - 1] < indices[i])
        << "FromSorted requires strictly increasing indices";
  }
#endif
  SparseVector out;
  out.indices_ = std::move(indices);
  out.values_ = std::move(values);
  return out;
}

double SparseVector::ValueAt(LocalId index) const {
  auto it = std::lower_bound(indices_.begin(), indices_.end(), index);
  if (it == indices_.end() || *it != index) return 0.0;
  return values_[static_cast<std::size_t>(it - indices_.begin())];
}

void SparseVector::Prune() {
  std::size_t write = 0;
  for (std::size_t read = 0; read < indices_.size(); ++read) {
    if (values_[read] != 0.0) {
      indices_[write] = indices_[read];
      values_[write] = values_[read];
      ++write;
    }
  }
  indices_.resize(write);
  values_.resize(write);
}

void SparseVector::Scale(double factor) {
  for (double& value : values_) value *= factor;
}

std::string SparseVector::ToString() const {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < indices_.size(); ++i) {
    if (i > 0) out << ", ";
    out << indices_[i] << ":" << values_[i];
  }
  out << "]";
  return out.str();
}

double Dot(SparseVecView a, SparseVecView b) {
  return ActiveKernels().dot(a.indices.data(), a.values.data(),
                             a.indices.size(), b.indices.data(),
                             b.values.data(), b.indices.size());
}

double Sum(SparseVecView v) {
  return ActiveKernels().sum(v.values.data(), v.values.size());
}

double L1Norm(SparseVecView v) {
  return ActiveKernels().l1(v.values.data(), v.values.size());
}

double L2NormSquared(SparseVecView v) {
  return ActiveKernels().l2sq(v.values.data(), v.values.size());
}

SparseVector AddScaled(SparseVecView a, SparseVecView b, double scale) {
  std::vector<LocalId> indices(a.nnz() + b.nnz());
  std::vector<double> values(indices.size());
  const std::size_t written = ActiveKernels().add_scaled(
      a.indices.data(), a.values.data(), a.indices.size(), b.indices.data(),
      b.values.data(), b.indices.size(), scale, indices.data(), values.data());
  indices.resize(written);
  values.resize(written);
  return SparseVector::FromSorted(std::move(indices), std::move(values));
}

double CosineSimilarity(SparseVecView a, SparseVecView b) {
  const double na = L2NormSquared(a);
  const double nb = L2NormSquared(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (std::sqrt(na) * std::sqrt(nb));
}

void DenseAccumulator::Resize(std::size_t dimension) {
  if (dense_.size() < dimension) {
    dense_.resize(dimension, 0.0);
  }
  // Dense-scan harvesting beats sort-based harvesting once roughly a
  // quarter of the slots are live: the scan touches 4 slots per output
  // entry (read-mostly, vectorized) while the sort pays O(log t) plus a
  // gather per entry.
  dense_switch_ = std::max<std::size_t>(8, dense_.size() / 4);
}

void DenseAccumulator::Add(LocalId index, double value) {
  NETOUT_CHECK(index < dense_.size()) << "accumulator index out of range";
  if (!dense_mode_ && dense_[index] == 0.0) {
    NoteTouched(index);
  }
  dense_[index] += value;
  // A sum landing exactly on zero would orphan the touched entry; keep it
  // (Harvest filters zero values) to stay O(1) per Add.
}

void DenseAccumulator::AddSpan(std::span<const LocalId> indices,
                               std::span<const double> values, double weight) {
  NETOUT_CHECK(indices.size() == values.size());
  NETOUT_CHECK(indices.empty() || indices.back() < dense_.size())
      << "accumulator index out of range";
  if (dense_mode_) {
    ActiveKernels().add_span(indices.data(), values.data(), indices.size(),
                             weight, dense_.data());
    return;
  }
  // Sparse regime stays inline: the per-slot zero test and touched push
  // defeat vectorization, and an indirect call per (often tiny) span
  // costs more than the loop.
  for (std::size_t k = 0; k < indices.size(); ++k) {
    const LocalId i = indices[k];
    if (dense_[i] == 0.0) touched_.push_back(i);
    dense_[i] += weight * values[k];
  }
  if (touched_.size() >= dense_switch_) dense_mode_ = true;
}

void DenseAccumulator::AddRow(std::span<const CsrEntry> row, double weight) {
  NETOUT_CHECK(row.empty() || row.back().neighbor < dense_.size())
      << "accumulator index out of range";
  if (dense_mode_) {
    ActiveKernels().expand_row(row.data(), row.size(), weight, dense_.data());
    return;
  }
  for (const CsrEntry& entry : row) {
    const LocalId i = entry.neighbor;
    if (dense_[i] == 0.0) touched_.push_back(i);
    dense_[i] += weight * static_cast<double>(entry.count);
  }
  if (touched_.size() >= dense_switch_) dense_mode_ = true;
}

SparseVector DenseAccumulator::Harvest() {
  if (dense_mode_) {
    // Dense regime: the touched list is stale (tracking stopped at the
    // switch); scan the whole array instead. harvest_fill resets every
    // slot to +0.0.
    const KernelOps& kernels = ActiveKernels();
    const std::size_t nnz = kernels.harvest_count(dense_.data(), dense_.size());
    std::vector<LocalId> indices(nnz);
    std::vector<double> values(nnz);
    kernels.harvest_fill(dense_.data(), dense_.size(), indices.data(),
                         values.data());
    touched_.clear();
    dense_mode_ = false;
    return SparseVector::FromSorted(std::move(indices), std::move(values));
  }
  std::sort(touched_.begin(), touched_.end());
  std::vector<LocalId> indices;
  std::vector<double> values;
  indices.reserve(touched_.size());
  values.reserve(touched_.size());
  LocalId prev = kInvalidLocalId;
  for (LocalId index : touched_) {
    if (index == prev) continue;  // duplicate from a zero-crossing re-add
    prev = index;
    if (dense_[index] != 0.0) {
      indices.push_back(index);
      values.push_back(dense_[index]);
    }
    dense_[index] = 0.0;
  }
  touched_.clear();
  return SparseVector::FromSorted(std::move(indices), std::move(values));
}

void DenseAccumulator::Clear() {
  if (dense_mode_) {
    std::fill(dense_.begin(), dense_.end(), 0.0);
    dense_mode_ = false;
  } else {
    for (LocalId index : touched_) dense_[index] = 0.0;
  }
  touched_.clear();
}

}  // namespace netout
