#include "metapath/sparse_vector.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace netout {

void SparseVecView::DebugCheckSorted() const {
#ifndef NDEBUG
  NETOUT_CHECK(indices.size() == values.size());
  for (std::size_t i = 1; i < indices.size(); ++i) {
    NETOUT_CHECK(indices[i - 1] < indices[i])
        << "sparse view requires strictly increasing indices";
  }
#endif
}

SparseVector SparseVector::FromPairs(
    std::vector<std::pair<LocalId, double>> pairs) {
  std::sort(pairs.begin(), pairs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  SparseVector out;
  out.indices_.reserve(pairs.size());
  out.values_.reserve(pairs.size());
  std::size_t i = 0;
  while (i < pairs.size()) {
    const LocalId index = pairs[i].first;
    double value = 0.0;
    while (i < pairs.size() && pairs[i].first == index) {
      value += pairs[i].second;
      ++i;
    }
    out.indices_.push_back(index);
    out.values_.push_back(value);
  }
  return out;
}

SparseVector SparseVector::FromSorted(std::vector<LocalId> indices,
                                      std::vector<double> values) {
  NETOUT_CHECK(indices.size() == values.size());
#ifndef NDEBUG
  for (std::size_t i = 1; i < indices.size(); ++i) {
    NETOUT_CHECK(indices[i - 1] < indices[i])
        << "FromSorted requires strictly increasing indices";
  }
#endif
  SparseVector out;
  out.indices_ = std::move(indices);
  out.values_ = std::move(values);
  return out;
}

double SparseVector::ValueAt(LocalId index) const {
  auto it = std::lower_bound(indices_.begin(), indices_.end(), index);
  if (it == indices_.end() || *it != index) return 0.0;
  return values_[static_cast<std::size_t>(it - indices_.begin())];
}

void SparseVector::Prune() {
  std::size_t write = 0;
  for (std::size_t read = 0; read < indices_.size(); ++read) {
    if (values_[read] != 0.0) {
      indices_[write] = indices_[read];
      values_[write] = values_[read];
      ++write;
    }
  }
  indices_.resize(write);
  values_.resize(write);
}

void SparseVector::Scale(double factor) {
  for (double& value : values_) value *= factor;
}

std::string SparseVector::ToString() const {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < indices_.size(); ++i) {
    if (i > 0) out << ", ";
    out << indices_[i] << ":" << values_[i];
  }
  out << "]";
  return out.str();
}

double Dot(SparseVecView a, SparseVecView b) {
  double total = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.indices.size() && j < b.indices.size()) {
    if (a.indices[i] < b.indices[j]) {
      ++i;
    } else if (a.indices[i] > b.indices[j]) {
      ++j;
    } else {
      total += a.values[i] * b.values[j];
      ++i;
      ++j;
    }
  }
  return total;
}

double Sum(SparseVecView v) {
  double total = 0.0;
  for (double value : v.values) total += value;
  return total;
}

double L1Norm(SparseVecView v) {
  double total = 0.0;
  for (double value : v.values) total += std::abs(value);
  return total;
}

double L2NormSquared(SparseVecView v) {
  double total = 0.0;
  for (double value : v.values) total += value * value;
  return total;
}

SparseVector AddScaled(SparseVecView a, SparseVecView b, double scale) {
  std::vector<LocalId> indices;
  std::vector<double> values;
  indices.reserve(a.nnz() + b.nnz());
  values.reserve(a.nnz() + b.nnz());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.indices.size() || j < b.indices.size()) {
    if (j >= b.indices.size() ||
        (i < a.indices.size() && a.indices[i] < b.indices[j])) {
      indices.push_back(a.indices[i]);
      values.push_back(a.values[i]);
      ++i;
    } else if (i >= a.indices.size() || b.indices[j] < a.indices[i]) {
      indices.push_back(b.indices[j]);
      values.push_back(scale * b.values[j]);
      ++j;
    } else {
      indices.push_back(a.indices[i]);
      values.push_back(a.values[i] + scale * b.values[j]);
      ++i;
      ++j;
    }
  }
  return SparseVector::FromSorted(std::move(indices), std::move(values));
}

double CosineSimilarity(SparseVecView a, SparseVecView b) {
  const double na = L2NormSquared(a);
  const double nb = L2NormSquared(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (std::sqrt(na) * std::sqrt(nb));
}

void DenseAccumulator::Resize(std::size_t dimension) {
  if (dense_.size() < dimension) {
    dense_.resize(dimension, 0.0);
  }
}

void DenseAccumulator::Add(LocalId index, double value) {
  NETOUT_CHECK(index < dense_.size()) << "accumulator index out of range";
  if (dense_[index] == 0.0) {
    touched_.push_back(index);
  }
  dense_[index] += value;
  // A sum landing exactly on zero would orphan the touched entry; keep it
  // (Harvest filters zero values) to stay O(1) per Add.
}

SparseVector DenseAccumulator::Harvest() {
  std::sort(touched_.begin(), touched_.end());
  std::vector<LocalId> indices;
  std::vector<double> values;
  indices.reserve(touched_.size());
  values.reserve(touched_.size());
  LocalId prev = kInvalidLocalId;
  for (LocalId index : touched_) {
    if (index == prev) continue;  // duplicate from a zero-crossing re-add
    prev = index;
    if (dense_[index] != 0.0) {
      indices.push_back(index);
      values.push_back(dense_[index]);
    }
    dense_[index] = 0.0;
  }
  touched_.clear();
  return SparseVector::FromSorted(std::move(indices), std::move(values));
}

void DenseAccumulator::Clear() {
  for (LocalId index : touched_) dense_[index] = 0.0;
  touched_.clear();
}

}  // namespace netout
