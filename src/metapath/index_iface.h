#ifndef NETOUT_METAPATH_INDEX_IFACE_H_
#define NETOUT_METAPATH_INDEX_IFACE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>

#include "common/hash.h"
#include "graph/types.h"
#include "metapath/sparse_vector.h"

namespace netout {

/// Identifies one length-2 meta-path by its two resolved hops. This is
/// the key space of the pre-materialization indexes (Section 6.2): a
/// meta-path of arbitrary length decomposes into a chain of these.
struct TwoStepKey {
  EdgeStep first;
  EdgeStep second;

  friend bool operator==(const TwoStepKey& a, const TwoStepKey& b) {
    return a.first == b.first && a.second == b.second;
  }
};

struct TwoStepKeyHash {
  std::size_t operator()(const TwoStepKey& key) const {
    std::size_t h = HashCombine(key.first.edge_type,
                                static_cast<std::size_t>(key.first.direction));
    h = HashCombine(h, key.second.edge_type);
    return HashCombine(h, static_cast<std::size_t>(key.second.direction));
  }
};

/// A successful index lookup: sorted parallel spans over the length-2
/// neighbor vector, plus an ownership pin that keeps the spans valid.
///
/// For the immutable PM/SPM indexes `pin` is null — the spans alias
/// index storage, which outlives any reader. CachedIndex sets `pin` to
/// the entry's shared payload so that a concurrent (or later) eviction
/// can never free memory a reader still holds: the spans stay valid for
/// the lifetime of the IndexHit, full stop.
struct IndexHit {
  std::span<const LocalId> indices;
  std::span<const double> values;
  std::shared_ptr<const SparseVector> pin;  // null when storage is immortal

  std::size_t nnz() const { return indices.size(); }
  bool empty() const { return indices.empty(); }
  SparseVecView View() const { return SparseVecView{indices, values}; }
};

/// Read interface shared by PmIndex (all vertices), SpmIndex
/// (frequency-selected vertices), and CachedIndex (dynamic memoization).
/// Lookup returns the pre-materialized length-2 neighbor vector φ of
/// `row` for the given key, or nullopt on a miss (not indexed).
class MetaPathIndex {
 public:
  virtual ~MetaPathIndex() = default;

  virtual std::optional<IndexHit> Lookup(const TwoStepKey& key,
                                         LocalId row) const = 0;

  /// Heap footprint of the index payload (Figure 5b accounting).
  virtual std::size_t MemoryBytes() const = 0;

  /// Memoization hook: the evaluator calls this after computing a
  /// length-2 vector by traversal fallback, so caching implementations
  /// (CachedIndex) can remember it. Logically const — remembering is
  /// transparent to lookups. Default: drop the result.
  virtual void Remember(const TwoStepKey& key, LocalId row,
                        const SparseVector& vector) const {
    (void)key;
    (void)row;
    (void)vector;
  }

  /// Graph epoch this index's contents describe (DESIGN.md §14). Roots
  /// and indexes without delta maintenance stay at 0; incrementally
  /// maintained indexes (PmIndex/SpmIndex ApplyDelta, CachedIndex
  /// BeginEpoch) advance it in lockstep with MutableHin commits.
  virtual std::uint64_t epoch() const { return 0; }

  /// Epoch-checked lookup: a reader pinned to snapshot `reader_epoch`
  /// must not consume rows describing a different epoch. The default
  /// guards the plain Lookup with an exact epoch match — stale readers
  /// (or a stale index) degrade to traversal fallback, never to wrong
  /// answers. CachedIndex overrides with a per-shard check under the
  /// shard lock.
  virtual std::optional<IndexHit> LookupAt(const TwoStepKey& key, LocalId row,
                                           std::uint64_t reader_epoch) const {
    if (reader_epoch != epoch()) return std::nullopt;
    return Lookup(key, row);
  }

  /// Epoch-checked memoization: drops the vector unless the writer's
  /// snapshot epoch matches the index epoch, so a reader running against
  /// an old snapshot can never poison the cache for the new epoch.
  virtual void RememberAt(const TwoStepKey& key, LocalId row,
                          const SparseVector& vector,
                          std::uint64_t writer_epoch) const {
    if (writer_epoch == epoch()) Remember(key, row, vector);
  }

  /// Short lowercase tag naming the index family ("pm", "spm", "cache"),
  /// used by EXPLAIN PLAN to label indexed operators.
  virtual std::string_view Name() const { return "indexed"; }

  /// True if Lookup/Remember may be called from several threads at once.
  /// All in-tree implementations qualify: PM/SPM are immutable after
  /// build and CachedIndex is a sharded mutex-guarded LRU whose hits are
  /// refcount-pinned. A third-party index that mutates unguarded state
  /// must override to false; the executor and BatchRunner then *reject*
  /// multi-threaded execution with kFailedPrecondition rather than
  /// silently racing (or silently serializing, as older versions did).
  virtual bool SupportsConcurrentUse() const { return true; }
};

}  // namespace netout

#endif  // NETOUT_METAPATH_INDEX_IFACE_H_
