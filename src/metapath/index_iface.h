#ifndef NETOUT_METAPATH_INDEX_IFACE_H_
#define NETOUT_METAPATH_INDEX_IFACE_H_

#include <cstddef>
#include <optional>

#include "common/hash.h"
#include "graph/types.h"
#include "metapath/sparse_vector.h"

namespace netout {

/// Identifies one length-2 meta-path by its two resolved hops. This is
/// the key space of the pre-materialization indexes (Section 6.2): a
/// meta-path of arbitrary length decomposes into a chain of these.
struct TwoStepKey {
  EdgeStep first;
  EdgeStep second;

  friend bool operator==(const TwoStepKey& a, const TwoStepKey& b) {
    return a.first == b.first && a.second == b.second;
  }
};

struct TwoStepKeyHash {
  std::size_t operator()(const TwoStepKey& key) const {
    std::size_t h = HashCombine(key.first.edge_type,
                                static_cast<std::size_t>(key.first.direction));
    h = HashCombine(h, key.second.edge_type);
    return HashCombine(h, static_cast<std::size_t>(key.second.direction));
  }
};

/// Read interface shared by PmIndex (all vertices) and SpmIndex
/// (frequency-selected vertices). Lookup returns the pre-materialized
/// length-2 neighbor vector φ of `row` for the given key, or nullopt on
/// a miss (not indexed). Implementations are immutable after build and
/// safe for concurrent lookups.
class MetaPathIndex {
 public:
  virtual ~MetaPathIndex() = default;

  virtual std::optional<SparseVecView> Lookup(const TwoStepKey& key,
                                              LocalId row) const = 0;

  /// Heap footprint of the index payload (Figure 5b accounting).
  virtual std::size_t MemoryBytes() const = 0;

  /// Memoization hook: the evaluator calls this after computing a
  /// length-2 vector by traversal fallback, so caching implementations
  /// (CachedIndex) can remember it. Logically const — remembering is
  /// transparent to lookups. Default: drop the result.
  virtual void Remember(const TwoStepKey& key, LocalId row,
                        const SparseVector& vector) const {
    (void)key;
    (void)row;
    (void)vector;
  }

  /// True if Lookup/Remember may be called from several threads at once
  /// (the immutable PM/SPM indexes). CachedIndex overrides to false — its
  /// LRU state mutates on Lookup and returned views can dangle across an
  /// eviction — which makes the parallel executor fall back to serial
  /// materialization while keeping parallel scoring.
  virtual bool SupportsConcurrentUse() const { return true; }
};

}  // namespace netout

#endif  // NETOUT_METAPATH_INDEX_IFACE_H_
