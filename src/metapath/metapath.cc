#include "metapath/metapath.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace netout {

Result<MetaPath> MetaPath::Create(const Schema& schema,
                                  std::vector<TypeId> types,
                                  std::vector<std::string> edge_names) {
  if (types.empty()) {
    return Status::InvalidArgument("meta-path needs at least one type");
  }
  for (TypeId t : types) {
    if (t >= schema.num_vertex_types()) {
      return Status::OutOfRange("meta-path references unknown vertex type");
    }
  }
  if (!edge_names.empty() && edge_names.size() != types.size() - 1) {
    return Status::InvalidArgument(
        "edge_names must have one entry per hop (or be empty)");
  }
  MetaPath path;
  path.types_ = std::move(types);
  path.steps_.reserve(path.types_.size() - 1);
  for (std::size_t i = 0; i + 1 < path.types_.size(); ++i) {
    const TypeId from = path.types_[i];
    const TypeId to = path.types_[i + 1];
    if (!edge_names.empty() && !edge_names[i].empty()) {
      NETOUT_ASSIGN_OR_RETURN(
          EdgeStep step, schema.ResolveStepByName(edge_names[i], from, to));
      path.steps_.push_back(step);
    } else {
      NETOUT_ASSIGN_OR_RETURN(EdgeStep step, schema.ResolveStep(from, to));
      path.steps_.push_back(step);
    }
  }
  return path;
}

Result<MetaPath> MetaPath::Parse(const Schema& schema,
                                 std::string_view text) {
  std::vector<std::string> segments = StrSplit(text, '.');
  std::vector<TypeId> types;
  std::vector<std::string> edge_names;
  types.reserve(segments.size());
  for (std::size_t i = 0; i < segments.size(); ++i) {
    std::string_view segment = StrTrim(segments[i]);
    std::string edge_name;
    const std::size_t bracket = segment.find('[');
    if (bracket != std::string_view::npos) {
      if (segment.back() != ']') {
        return Status::ParseError("malformed edge annotation in '" +
                                  std::string(segment) + "'");
      }
      if (i == 0) {
        return Status::ParseError(
            "the first meta-path segment cannot carry an edge annotation");
      }
      edge_name = std::string(
          segment.substr(bracket + 1, segment.size() - bracket - 2));
      segment = segment.substr(0, bracket);
    }
    NETOUT_ASSIGN_OR_RETURN(TypeId type, schema.FindVertexType(segment));
    types.push_back(type);
    if (i > 0) edge_names.push_back(std::move(edge_name));
  }
  return Create(schema, std::move(types), std::move(edge_names));
}

Result<MetaPath> MetaPath::FromSteps(const Schema& schema,
                                     std::vector<EdgeStep> steps) {
  if (steps.empty()) {
    return Status::InvalidArgument("FromSteps requires at least one step");
  }
  MetaPath path;
  path.types_.reserve(steps.size() + 1);
  path.types_.push_back(schema.StepSource(steps.front()));
  for (std::size_t i = 0; i < steps.size(); ++i) {
    if (steps[i].edge_type >= schema.num_edge_types()) {
      return Status::OutOfRange("step references unknown edge type");
    }
    if (schema.StepSource(steps[i]) != path.types_.back()) {
      return Status::InvalidArgument("steps do not chain");
    }
    path.types_.push_back(schema.StepTarget(steps[i]));
  }
  path.steps_ = std::move(steps);
  return path;
}

MetaPath MetaPath::Reverse() const {
  MetaPath out;
  out.types_.assign(types_.rbegin(), types_.rend());
  out.steps_.reserve(steps_.size());
  for (auto it = steps_.rbegin(); it != steps_.rend(); ++it) {
    out.steps_.push_back(EdgeStep{it->edge_type, Opposite(it->direction)});
  }
  return out;
}

Result<MetaPath> MetaPath::Concat(const MetaPath& other) const {
  NETOUT_CHECK(!types_.empty() && !other.types_.empty());
  if (target_type() != other.source_type()) {
    return Status::InvalidArgument(
        "meta-paths are not concatenable: target type of the first does "
        "not match source type of the second");
  }
  MetaPath out;
  out.types_ = types_;
  out.types_.insert(out.types_.end(), other.types_.begin() + 1,
                    other.types_.end());
  out.steps_ = steps_;
  out.steps_.insert(out.steps_.end(), other.steps_.begin(),
                    other.steps_.end());
  return out;
}

MetaPath MetaPath::Symmetric() const {
  Result<MetaPath> sym = Concat(Reverse());
  NETOUT_CHECK(sym.ok()) << "P and P⁻¹ are always concatenable";
  return std::move(sym).value();
}

std::string MetaPath::ToString(const Schema& schema) const {
  std::string out;
  for (std::size_t i = 0; i < types_.size(); ++i) {
    if (i > 0) out += ".";
    out += schema.VertexTypeName(types_[i]);
    // Emit the edge annotation only when auto-resolution would not find
    // the same step (keeps round-trips minimal but unambiguous).
    if (i > 0) {
      auto resolved = schema.ResolveStep(types_[i - 1], types_[i]);
      if (!resolved.ok() || !(resolved.value() == steps_[i - 1])) {
        out += "[" + schema.edge_type(steps_[i - 1].edge_type).name + "]";
      }
    }
  }
  return out;
}

}  // namespace netout
