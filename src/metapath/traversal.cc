#include "metapath/traversal.h"

#include <utility>

#include "common/logging.h"

namespace netout {

PathCounter::PathCounter(HinPtr hin) : hin_(std::move(hin)) {
  NETOUT_CHECK(hin_ != nullptr);
  acc_.resize(hin_->schema().num_vertex_types());
}

Result<SparseVector> PathCounter::NeighborVector(VertexRef v,
                                                 const MetaPath& path) {
  if (path.types().empty()) {
    return Status::InvalidArgument("empty meta-path");
  }
  if (v.type != path.source_type()) {
    return Status::InvalidArgument(
        "vertex type does not match the meta-path source type");
  }
  if (v.local >= hin_->NumVertices(v.type)) {
    return Status::OutOfRange("vertex id out of range");
  }
  SparseVector unit = SparseVector::FromSorted({v.local}, {1.0});
  return RunHops(std::move(unit), path.steps());
}

Result<SparseVector> PathCounter::Propagate(const SparseVector& frontier,
                                            const MetaPath& path) {
  if (path.types().empty()) {
    return Status::InvalidArgument("empty meta-path");
  }
  return RunHops(frontier, path.steps());
}

SparseVector PathCounter::PropagateStep(const SparseVector& frontier,
                                        const EdgeStep& step) {
  const TypeId target = hin_->schema().StepTarget(step);
  DenseAccumulator& acc = acc_[target];
  acc.Resize(hin_->NumVertices(target));
  const auto indices = frontier.indices();
  const auto values = frontier.values();
  for (std::size_t i = 0; i < indices.size(); ++i) {
    // StepRow is overlay-aware: rows a delta patched come from the
    // overlay, the rest straight from the base CSR.
    acc.AddRow(hin_->StepRow(step, indices[i]), values[i]);
  }
  return acc.Harvest();
}

Result<SparseVector> PathCounter::RunHops(SparseVector frontier,
                                          std::span<const EdgeStep> steps) {
  for (const EdgeStep& step : steps) {
    if (stop_token_ != nullptr && stop_token_->ShouldStop()) {
      return stop_token_->ToStatus();
    }
    frontier = PropagateStep(frontier, step);
    if (frontier.empty()) break;  // nothing reachable further on
  }
  return frontier;
}

Result<std::vector<VertexRef>> PathCounter::Neighborhood(
    VertexRef v, const MetaPath& path) {
  NETOUT_ASSIGN_OR_RETURN(SparseVector vec, NeighborVector(v, path));
  std::vector<VertexRef> out;
  out.reserve(vec.nnz());
  for (LocalId local : vec.indices()) {
    out.push_back(VertexRef{path.target_type(), local});
  }
  return out;
}

}  // namespace netout
