#include "metapath/matrix.h"

#include "common/logging.h"
#include "metapath/traversal.h"

namespace netout {

Result<RelationMatrix> RelationMatrix::Materialize(const Hin& hin,
                                                   const MetaPath& path) {
  if (path.types().empty()) {
    return Status::InvalidArgument("empty meta-path");
  }
  RelationMatrix out;
  out.row_type_ = path.source_type();
  out.col_type_ = path.target_type();
  const std::size_t rows = hin.NumVertices(out.row_type_);

  // Hop state as a dense frontier per source vertex, reusing one
  // accumulator via PathCounter.
  // PathCounter needs a HinPtr; wrap without ownership transfer.
  HinPtr alias(&hin, [](const Hin*) {});
  PathCounter counter(alias);

  out.offsets_.assign(rows + 1, 0);
  for (LocalId row = 0; row < rows; ++row) {
    NETOUT_ASSIGN_OR_RETURN(
        SparseVector vec,
        counter.NeighborVector(VertexRef{out.row_type_, row}, path));
    out.offsets_[row + 1] = out.offsets_[row] + vec.nnz();
    out.cols_.insert(out.cols_.end(), vec.indices().begin(),
                     vec.indices().end());
    out.vals_.insert(out.vals_.end(), vec.values().begin(),
                     vec.values().end());
  }
  return out;
}

Result<RelationMatrix> RelationMatrix::FromRaw(
    TypeId row_type, TypeId col_type, std::vector<std::uint64_t> offsets,
    std::vector<LocalId> cols, std::vector<double> vals) {
  if (offsets.empty() || offsets.front() != 0 ||
      offsets.back() != cols.size() || cols.size() != vals.size()) {
    return Status::Corruption("relation matrix arrays are inconsistent");
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i - 1] > offsets[i]) {
      return Status::Corruption("relation matrix offsets not monotone");
    }
    // Each row's columns must be strictly increasing: Row() views feed
    // the sorted-merge kernels (Dot, AddScaled, SumVectors), which
    // silently compute garbage on unsorted input. Validating here covers
    // deserialized payloads in release builds too.
    for (std::uint64_t k = offsets[i - 1] + 1; k < offsets[i]; ++k) {
      if (cols[k - 1] >= cols[k]) {
        return Status::Corruption("relation matrix row columns not sorted");
      }
    }
  }
  RelationMatrix out;
  out.row_type_ = row_type;
  out.col_type_ = col_type;
  out.offsets_ = std::move(offsets);
  out.cols_ = std::move(cols);
  out.vals_ = std::move(vals);
  return out;
}

SparseVector MultiplyRowVector(const SparseVector& vec,
                               const RelationMatrix& matrix,
                               DenseAccumulator* acc) {
  NETOUT_CHECK(acc != nullptr);
  // Output dimension: columns of the matrix. The accumulator is sized to
  // the max column id + 1 we could touch; the matrix knows its column
  // type's cardinality only implicitly, so size by scanning is avoided by
  // requiring callers to Resize upfront. For safety, grow lazily here.
  const auto indices = vec.indices();
  const auto values = vec.values();
  for (std::size_t i = 0; i < indices.size(); ++i) {
    SparseVecView row = matrix.Row(indices[i]);
    const double weight = values[i];
    for (std::size_t k = 0; k < row.indices.size(); ++k) {
      if (row.indices[k] >= acc->dimension()) {
        acc->Resize(row.indices[k] + 1);
      }
      acc->Add(row.indices[k], weight * row.values[k]);
    }
  }
  return acc->Harvest();
}

}  // namespace netout
