#include "metapath/matrix.h"

#include <algorithm>

#include "common/logging.h"
#include "metapath/traversal.h"

namespace netout {

Result<RelationMatrix> RelationMatrix::Materialize(
    const Hin& hin, const MetaPath& path, const CancellationToken* stop) {
  if (path.types().empty()) {
    return Status::InvalidArgument("empty meta-path");
  }
  RelationMatrix out;
  out.row_type_ = path.source_type();
  out.col_type_ = path.target_type();
  out.num_cols_ = hin.NumVertices(out.col_type_);
  const std::size_t rows = hin.NumVertices(out.row_type_);

  // Hop state as a dense frontier per source vertex, reusing one
  // accumulator via PathCounter.
  // PathCounter needs a HinPtr; wrap without ownership transfer.
  HinPtr alias(&hin, [](const Hin*) {});
  PathCounter counter(alias);
  counter.SetStopToken(stop);

  out.offsets_.assign(rows + 1, 0);
  for (LocalId row = 0; row < rows; ++row) {
    if (stop != nullptr && stop->ShouldStop()) return stop->ToStatus();
    NETOUT_ASSIGN_OR_RETURN(
        SparseVector vec,
        counter.NeighborVector(VertexRef{out.row_type_, row}, path));
    out.offsets_[row + 1] = out.offsets_[row] + vec.nnz();
    out.cols_.insert(out.cols_.end(), vec.indices().begin(),
                     vec.indices().end());
    out.vals_.insert(out.vals_.end(), vec.values().begin(),
                     vec.values().end());
  }
  return out;
}

RelationMatrix RelationMatrix::Transpose() const {
  RelationMatrix out;
  out.row_type_ = col_type_;
  out.col_type_ = row_type_;
  out.num_cols_ = num_rows();
  const std::size_t out_rows = num_cols_;
  out.offsets_.assign(out_rows + 1, 0);
  for (LocalId col : cols_) {
    ++out.offsets_[static_cast<std::size_t>(col) + 1];
  }
  for (std::size_t r = 0; r < out_rows; ++r) {
    out.offsets_[r + 1] += out.offsets_[r];
  }
  out.cols_.resize(cols_.size());
  out.vals_.resize(vals_.size());
  // Scatter row-by-row in ascending source order, so each transposed
  // row's columns come out sorted.
  std::vector<std::uint64_t> cursor(out.offsets_.begin(),
                                    out.offsets_.end() - 1);
  for (std::size_t row = 0; row + 1 < offsets_.size(); ++row) {
    for (std::uint64_t k = offsets_[row]; k < offsets_[row + 1]; ++k) {
      const std::uint64_t slot = cursor[cols_[k]]++;
      out.cols_[slot] = static_cast<LocalId>(row);
      out.vals_[slot] = vals_[k];
    }
  }
  return out;
}

Result<RelationMatrix> RelationMatrix::FromRaw(
    TypeId row_type, TypeId col_type, std::vector<std::uint64_t> offsets,
    std::vector<LocalId> cols, std::vector<double> vals) {
  if (offsets.empty() || offsets.front() != 0 ||
      offsets.back() != cols.size() || cols.size() != vals.size()) {
    return Status::Corruption("relation matrix arrays are inconsistent");
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i - 1] > offsets[i]) {
      return Status::Corruption("relation matrix offsets not monotone");
    }
    // Each row's columns must be strictly increasing: Row() views feed
    // the sorted-merge kernels (Dot, AddScaled, SumVectors), which
    // silently compute garbage on unsorted input. Validating here covers
    // deserialized payloads in release builds too.
    for (std::uint64_t k = offsets[i - 1] + 1; k < offsets[i]; ++k) {
      if (cols[k - 1] >= cols[k]) {
        return Status::Corruption("relation matrix row columns not sorted");
      }
    }
  }
  RelationMatrix out;
  out.row_type_ = row_type;
  out.col_type_ = col_type;
  for (LocalId col : cols) {
    out.num_cols_ =
        std::max(out.num_cols_, static_cast<std::size_t>(col) + 1);
  }
  out.offsets_ = std::move(offsets);
  out.cols_ = std::move(cols);
  out.vals_ = std::move(vals);
  return out;
}

SparseVector MultiplyRowVector(const SparseVector& vec,
                               const RelationMatrix& matrix,
                               DenseAccumulator* acc) {
  NETOUT_CHECK(acc != nullptr);
  // Size the accumulator once: every row entry is < num_cols() by
  // construction (the old per-entry lazy Resize branch sat inside the
  // inner loop of the hottest multiply).
  acc->Resize(matrix.num_cols());
  const auto indices = vec.indices();
  const auto values = vec.values();
  for (std::size_t i = 0; i < indices.size(); ++i) {
    SparseVecView row = matrix.Row(indices[i]);
    acc->AddSpan(row.indices, row.values, values[i]);
  }
  return acc->Harvest();
}

}  // namespace netout
