#ifndef NETOUT_METAPATH_EVALUATOR_H_
#define NETOUT_METAPATH_EVALUATOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

#include "common/result.h"
#include "common/stopwatch.h"
#include "graph/hin.h"
#include "metapath/index_iface.h"
#include "metapath/metapath.h"
#include "metapath/traversal.h"

namespace netout {

/// Per-stage timing and hit statistics of neighbor-vector evaluation.
/// These are the quantities broken out in Figure 4:
///  * not_indexed — traversal-based materialization for vertices without
///    pre-materialized vectors (and the baseline's full traversals);
///  * indexed     — looking up and combining pre-materialized vectors.
struct EvalStats {
  TimeAccumulator not_indexed;
  TimeAccumulator indexed;
  std::size_t index_hits = 0;
  std::size_t index_misses = 0;

  void Clear() {
    not_indexed.Clear();
    indexed.Clear();
    index_hits = 0;
    index_misses = 0;
  }

  void MergeFrom(const EvalStats& other) {
    not_indexed.AddNanos(other.not_indexed.TotalNanos());
    indexed.AddNanos(other.indexed.TotalNanos());
    index_hits += other.index_hits;
    index_misses += other.index_misses;
  }
};

/// Computes neighbor vectors φ_P(v), transparently using a
/// pre-materialization index when one is attached.
///
/// Without an index this is plain traversal (the paper's Baseline).
/// With an index, the meta-path is decomposed into length-2 chunks
/// (Section 6.2): the frontier is pushed through each chunk by combining
/// pre-materialized rows (index hits) with on-the-fly two-hop traversals
/// (misses), plus a single raw hop when the path length is odd.
///
/// Not thread-safe (owns a traversal workspace); create one per thread.
class NeighborVectorEvaluator {
 public:
  /// `index` may be null (baseline). It is borrowed and must outlive the
  /// evaluator.
  NeighborVectorEvaluator(HinPtr hin, const MetaPathIndex* index);

  /// φ_P(v) with per-stage timing accumulated into `stats` (may be null).
  Result<SparseVector> Evaluate(VertexRef v, const MetaPath& path,
                                EvalStats* stats);

  /// Pushes an arbitrary starting frontier (over path.source_type())
  /// through `path`: result = frontierᵀ · M_P, through the index when one
  /// is attached. This is the shared-prefix extension primitive: a
  /// materialized prefix vector re-enters here as the frontier of the
  /// remaining suffix. A length-0 path (or an empty frontier) returns the
  /// frontier unchanged.
  Result<SparseVector> EvaluateFrontier(SparseVector frontier,
                                        const MetaPath& path,
                                        EvalStats* stats);

  const Hin& hin() const { return *hin_; }
  bool has_index() const { return index_ != nullptr; }

  /// Installs (or clears, with nullptr) a cooperative stop token, also
  /// forwarded to the owned PathCounter: evaluation polls it at chunk
  /// boundaries (per length-2 chunk, per hop, and every few hundred
  /// frontier entries inside a wide chunk) and fails with the token's
  /// stop status. `token` is borrowed and must outlive its installation.
  void SetStopToken(const CancellationToken* token) {
    stop_token_ = token;
    counter_.SetStopToken(token);
  }

 private:
  // Two-hop traversal for one frontier entry on an index miss.
  SparseVector TraverseChunk(LocalId source, const EdgeStep& s1,
                             const EdgeStep& s2);

  // The length-2 chunk decomposition loop (index attached): pushes the
  // frontier through full chunks via the index and a trailing odd hop
  // raw. Fails with the stop status when the installed token trips.
  Result<SparseVector> EvaluateSteps(SparseVector frontier,
                                     std::span<const EdgeStep> steps,
                                     EvalStats* stats);

  HinPtr hin_;
  const MetaPathIndex* index_;
  // The pinned snapshot's epoch, captured at construction; every index
  // Lookup/Remember goes through the epoch-checked LookupAt/RememberAt.
  std::uint64_t epoch_ = 0;
  const CancellationToken* stop_token_ = nullptr;
  PathCounter counter_;
  DenseAccumulator chunk_acc_;
};

}  // namespace netout

#endif  // NETOUT_METAPATH_EVALUATOR_H_
