#ifndef NETOUT_GRAPH_BUILDER_H_
#define NETOUT_GRAPH_BUILDER_H_

#include <memory>
#include <string>
#include <string_view>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "graph/hin.h"

namespace netout {

/// Mutable accumulator that assembles an immutable Hin.
///
/// Usage:
///   GraphBuilder b;
///   auto author = b.AddVertexType("author").value();
///   auto paper  = b.AddVertexType("paper").value();
///   auto writes = b.AddEdgeType("writes", author, paper).value();
///   auto ava  = b.AddVertex(author, "Ava").value();
///   auto p1   = b.AddVertex(paper, "P1").value();
///   b.AddEdge(writes, ava, p1);
///   HinPtr hin = b.Finish().value();
///
/// AddVertex is idempotent per (type, name): re-adding returns the
/// existing reference. AddEdge accumulates multiplicity for repeated
/// links. Finish() consumes the builder.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  GraphBuilder(const GraphBuilder&) = delete;
  GraphBuilder& operator=(const GraphBuilder&) = delete;

  Result<TypeId> AddVertexType(std::string_view name) {
    return schema_.AddVertexType(name);
  }

  Result<EdgeTypeId> AddEdgeType(std::string_view name, TypeId src,
                                 TypeId dst);

  /// Adds (or finds) the vertex (type, name).
  Result<VertexRef> AddVertex(TypeId type, std::string_view name);

  /// Adds a link of type `edge_type` from `src` to `dst` with the given
  /// multiplicity. Vertex types must match the edge type's declaration.
  Status AddEdge(EdgeTypeId edge_type, VertexRef src, VertexRef dst,
                 std::uint32_t count = 1);

  /// Convenience: resolves everything by name.
  Status AddEdgeByName(std::string_view edge_type_name,
                       std::string_view src_name, std::string_view dst_name);

  const Schema& schema() const { return schema_; }
  std::size_t NumVertices(TypeId type) const;

  /// Freezes the accumulated data into an immutable Hin. The builder is
  /// left empty.
  Result<HinPtr> Finish();

 private:
  Schema schema_;
  std::vector<std::vector<std::string>> names_;
  std::vector<std::unordered_map<std::string, LocalId>> name_index_;
  // Per edge type: raw (src_local, dst_local, count) triples.
  std::vector<std::vector<std::tuple<LocalId, LocalId, std::uint32_t>>>
      edges_;
};

}  // namespace netout

#endif  // NETOUT_GRAPH_BUILDER_H_
