#include "graph/csr.h"

#include <algorithm>
#include <tuple>

#include "common/logging.h"

namespace netout {

Csr Csr::FromEdges(
    std::size_t num_rows,
    std::vector<std::tuple<LocalId, LocalId, std::uint32_t>> edges) {
  std::sort(edges.begin(), edges.end());

  Csr csr;
  csr.offsets_.assign(num_rows + 1, 0);
  csr.entries_.clear();
  csr.entries_.reserve(edges.size());

  // Single pass: coalesce duplicate (src, dst) pairs and count per-row
  // entries, then fill offsets by prefix sum.
  std::vector<std::uint64_t> row_sizes(num_rows, 0);
  std::size_t i = 0;
  while (i < edges.size()) {
    const LocalId src = std::get<0>(edges[i]);
    const LocalId dst = std::get<1>(edges[i]);
    NETOUT_CHECK(src < num_rows) << "CSR edge source out of range";
    std::uint64_t count = 0;
    while (i < edges.size() && std::get<0>(edges[i]) == src &&
           std::get<1>(edges[i]) == dst) {
      count += std::get<2>(edges[i]);
      ++i;
    }
    csr.entries_.push_back(
        CsrEntry{dst, static_cast<std::uint32_t>(count)});
    ++row_sizes[src];
  }
  std::uint64_t running = 0;
  for (std::size_t row = 0; row < num_rows; ++row) {
    csr.offsets_[row] = running;
    running += row_sizes[row];
  }
  csr.offsets_[num_rows] = running;
  return csr;
}

std::uint64_t Csr::RowEdgeCount(LocalId row) const {
  std::uint64_t total = 0;
  for (const CsrEntry& entry : Row(row)) {
    total += entry.count;
  }
  return total;
}

std::uint64_t Csr::TotalEdgeCount() const {
  std::uint64_t total = 0;
  for (const CsrEntry& entry : entries_) {
    total += entry.count;
  }
  return total;
}

Csr Csr::FromRaw(std::vector<std::uint64_t> offsets,
                 std::vector<CsrEntry> entries) {
  Csr csr;
  if (offsets.empty() || offsets.back() != entries.size()) {
    return csr;
  }
  csr.offsets_ = std::move(offsets);
  csr.entries_ = std::move(entries);
  return csr;
}

}  // namespace netout
