#include "graph/io.h"

#include <cstdint>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "common/binary_io.h"
#include "common/string_util.h"
#include "graph/builder.h"

namespace netout {
namespace {

// Version 1 stored schema + names + forward CSRs. Version 2 appends the
// per-direction adjacency sketches (degree-sum statistics the planner's
// cardinality estimator reads); v1 snapshots still load, recomputing the
// sketches from the CSR arrays.
constexpr std::string_view kHinMagicV1 = "NOUTHIN1";
constexpr std::string_view kHinMagicV2 = "NOUTHIN2";

void AppendSketch(std::string* buf, const AdjacencySketch& sketch) {
  AppendU64(buf, sketch.rows);
  AppendU64(buf, sketch.entries);
  AppendU64(buf, sketch.multiplicity);
  AppendU64(buf, sketch.max_row_entries);
}

Result<AdjacencySketch> ReadSketch(Cursor* cur) {
  AdjacencySketch sketch;
  NETOUT_ASSIGN_OR_RETURN(sketch.rows, cur->ReadU64());
  NETOUT_ASSIGN_OR_RETURN(sketch.entries, cur->ReadU64());
  NETOUT_ASSIGN_OR_RETURN(sketch.multiplicity, cur->ReadU64());
  NETOUT_ASSIGN_OR_RETURN(sketch.max_row_entries, cur->ReadU64());
  return sketch;
}

}  // namespace

// ---------------------------------------------------------------------
// Text format
// ---------------------------------------------------------------------

Result<HinPtr> LoadHinText(std::string_view path) {
  NETOUT_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  GraphBuilder builder;
  std::istringstream stream(data);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    std::string_view trimmed = StrTrim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    std::vector<std::string> fields = StrSplit(trimmed, '\t');
    auto fail = [&](std::string_view why) {
      return Status::ParseError(std::string(path) + ":" +
                                std::to_string(line_no) + ": " +
                                std::string(why));
    };
    const std::string& tag = fields[0];
    if (tag == "T") {
      if (fields.size() != 2) return fail("T expects 1 field");
      NETOUT_RETURN_IF_ERROR(builder.AddVertexType(fields[1]).status());
    } else if (tag == "E") {
      if (fields.size() != 4) return fail("E expects 3 fields");
      auto src = builder.schema().FindVertexType(fields[2]);
      if (!src.ok()) return fail(src.status().message());
      auto dst = builder.schema().FindVertexType(fields[3]);
      if (!dst.ok()) return fail(dst.status().message());
      NETOUT_RETURN_IF_ERROR(
          builder.AddEdgeType(fields[1], src.value(), dst.value()).status());
    } else if (tag == "V") {
      if (fields.size() != 3) return fail("V expects 2 fields");
      auto type = builder.schema().FindVertexType(fields[1]);
      if (!type.ok()) return fail(type.status().message());
      NETOUT_RETURN_IF_ERROR(
          builder.AddVertex(type.value(), fields[2]).status());
    } else if (tag == "L") {
      if (fields.size() != 4) return fail("L expects 3 fields");
      Status s = builder.AddEdgeByName(fields[1], fields[2], fields[3]);
      if (!s.ok()) return fail(s.message());
    } else {
      return fail("unknown record tag '" + tag + "'");
    }
  }
  return builder.Finish();
}

Status SaveHinText(const Hin& hin, std::string_view path) {
  std::string out;
  out += "# netout HIN text format\n";
  const Schema& schema = hin.schema();
  for (TypeId t = 0; t < schema.num_vertex_types(); ++t) {
    out += "T\t" + schema.VertexTypeName(t) + "\n";
  }
  for (EdgeTypeId e = 0; e < schema.num_edge_types(); ++e) {
    const EdgeTypeInfo& info = schema.edge_type(e);
    out += "E\t" + info.name + "\t" + schema.VertexTypeName(info.src) +
           "\t" + schema.VertexTypeName(info.dst) + "\n";
  }
  for (TypeId t = 0; t < schema.num_vertex_types(); ++t) {
    for (LocalId v = 0; v < hin.NumVertices(t); ++v) {
      out += "V\t" + schema.VertexTypeName(t) + "\t" +
             hin.VertexName(VertexRef{t, v}) + "\n";
    }
  }
  for (EdgeTypeId e = 0; e < schema.num_edge_types(); ++e) {
    const EdgeTypeInfo& info = schema.edge_type(e);
    const EdgeStep step{e, Direction::kForward};
    const std::size_t rows = hin.NumVertices(info.src);
    for (LocalId src = 0; src < rows; ++src) {
      for (const CsrEntry& entry : hin.StepRow(step, src)) {
        const std::string& src_name = hin.VertexName(VertexRef{info.src, src});
        const std::string& dst_name =
            hin.VertexName(VertexRef{info.dst, entry.neighbor});
        // Parallel links are written once per multiplicity unit so the
        // round trip preserves path-instance counts.
        for (std::uint32_t i = 0; i < entry.count; ++i) {
          out += "L\t" + info.name + "\t" + src_name + "\t" + dst_name + "\n";
        }
      }
    }
  }
  // Atomic (temp + rename): a signal or crash mid-save must never leave
  // a torn graph file under the final name.
  return WriteStringToFileAtomic(path, out);
}

// ---------------------------------------------------------------------
// Binary snapshot
// ---------------------------------------------------------------------

Status SaveHinBinary(const Hin& hin, std::string_view path) {
  const Schema& schema = hin.schema();
  std::string payload;

  AppendU64(&payload, schema.num_vertex_types());
  for (TypeId t = 0; t < schema.num_vertex_types(); ++t) {
    AppendString(&payload, schema.VertexTypeName(t));
  }
  AppendU64(&payload, schema.num_edge_types());
  for (EdgeTypeId e = 0; e < schema.num_edge_types(); ++e) {
    const EdgeTypeInfo& info = schema.edge_type(e);
    AppendString(&payload, info.name);
    AppendU32(&payload, info.src);
    AppendU32(&payload, info.dst);
  }
  for (TypeId t = 0; t < schema.num_vertex_types(); ++t) {
    AppendU64(&payload, hin.NumVertices(t));
    for (LocalId v = 0; v < hin.NumVertices(t); ++v) {
      AppendString(&payload, hin.VertexName(VertexRef{t, v}));
    }
  }
  for (EdgeTypeId e = 0; e < schema.num_edge_types(); ++e) {
    const EdgeStep step{e, Direction::kForward};
    if (!hin.has_overlay() && !hin.is_sharded()) {
      // In-memory root graphs stream the CSR arrays directly,
      // copy-free; overlay and sharded snapshots fold below.
      const Csr& csr = hin.Adjacency(step);
      AppendU64(&payload, csr.num_rows());
      AppendU64(&payload, csr.num_entries());
      for (std::uint64_t offset : csr.offsets()) AppendU64(&payload, offset);
      for (const CsrEntry& entry : csr.entries()) {
        AppendU32(&payload, entry.neighbor);
        AppendU32(&payload, entry.count);
      }
      continue;
    }
    // Overlay/sharded snapshots: fold rows into contiguous arrays. The
    // result is byte-identical to saving the flattened rebuild.
    const EdgeTypeInfo& info = schema.edge_type(e);
    const std::size_t rows = hin.NumVertices(info.src);
    std::vector<std::uint64_t> offsets(1, 0);
    std::vector<CsrEntry> flat;
    offsets.reserve(rows + 1);
    for (LocalId src = 0; src < rows; ++src) {
      const std::span<const CsrEntry> row = hin.StepRow(step, src);
      flat.insert(flat.end(), row.begin(), row.end());
      offsets.push_back(flat.size());
    }
    AppendU64(&payload, rows);
    AppendU64(&payload, flat.size());
    for (std::uint64_t offset : offsets) AppendU64(&payload, offset);
    for (const CsrEntry& entry : flat) {
      AppendU32(&payload, entry.neighbor);
      AppendU32(&payload, entry.count);
    }
  }
  for (EdgeTypeId e = 0; e < schema.num_edge_types(); ++e) {
    AppendSketch(&payload, hin.StepSketch(EdgeStep{e, Direction::kForward}));
    AppendSketch(&payload, hin.StepSketch(EdgeStep{e, Direction::kReverse}));
  }

  // Atomic (temp + rename): the checksum detects a torn snapshot after
  // the fact, but a reader racing a plain in-place rewrite would still
  // observe one; rename makes the swap indivisible.
  return WriteStringToFileAtomic(path,
                                 WrapWithChecksum(kHinMagicV2, payload));
}

Result<HinPtr> LoadHinBinary(std::string_view path) {
  NETOUT_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  const bool is_v1 =
      data.size() >= kHinMagicV1.size() &&
      std::string_view(data).substr(0, kHinMagicV1.size()) == kHinMagicV1;
  NETOUT_ASSIGN_OR_RETURN(
      std::string payload,
      UnwrapChecked(is_v1 ? kHinMagicV1 : kHinMagicV2, data));

  auto hin = std::shared_ptr<Hin>(new Hin());
  Cursor cur(payload);

  NETOUT_ASSIGN_OR_RETURN(std::uint64_t num_types, cur.ReadU64());
  for (std::uint64_t t = 0; t < num_types; ++t) {
    NETOUT_ASSIGN_OR_RETURN(std::string name, cur.ReadString());
    NETOUT_RETURN_IF_ERROR(hin->schema_.AddVertexType(name).status());
  }
  NETOUT_ASSIGN_OR_RETURN(std::uint64_t num_edge_types, cur.ReadU64());
  for (std::uint64_t e = 0; e < num_edge_types; ++e) {
    NETOUT_ASSIGN_OR_RETURN(std::string name, cur.ReadString());
    NETOUT_ASSIGN_OR_RETURN(std::uint32_t src, cur.ReadU32());
    NETOUT_ASSIGN_OR_RETURN(std::uint32_t dst, cur.ReadU32());
    if (src >= num_types || dst >= num_types) {
      return Status::Corruption("edge type endpoint out of range");
    }
    NETOUT_RETURN_IF_ERROR(hin->schema_
                               .AddEdgeType(name, static_cast<TypeId>(src),
                                            static_cast<TypeId>(dst))
                               .status());
  }

  hin->names_.resize(num_types);
  hin->name_index_.resize(num_types);
  for (std::uint64_t t = 0; t < num_types; ++t) {
    NETOUT_ASSIGN_OR_RETURN(std::uint64_t count, cur.ReadU64());
    hin->names_[t].reserve(count);
    for (std::uint64_t v = 0; v < count; ++v) {
      NETOUT_ASSIGN_OR_RETURN(std::string name, cur.ReadString());
      LocalId local = static_cast<LocalId>(hin->names_[t].size());
      auto [it, inserted] = hin->name_index_[t].emplace(name, local);
      (void)it;
      if (!inserted) {
        return Status::Corruption("duplicate vertex name in snapshot");
      }
      hin->names_[t].push_back(std::move(name));
    }
  }

  for (std::uint64_t e = 0; e < num_edge_types; ++e) {
    const EdgeTypeInfo& info =
        hin->schema_.edge_type(static_cast<EdgeTypeId>(e));
    NETOUT_ASSIGN_OR_RETURN(std::uint64_t num_rows, cur.ReadU64());
    NETOUT_ASSIGN_OR_RETURN(std::uint64_t num_entries, cur.ReadU64());
    if (num_rows != hin->names_[info.src].size()) {
      return Status::Corruption("CSR row count mismatch");
    }
    std::vector<std::uint64_t> offsets(num_rows + 1);
    for (auto& offset : offsets) {
      NETOUT_ASSIGN_OR_RETURN(offset, cur.ReadU64());
    }
    std::vector<CsrEntry> entries(num_entries);
    std::vector<std::tuple<LocalId, LocalId, std::uint32_t>> reversed;
    reversed.reserve(num_entries);
    for (auto& entry : entries) {
      NETOUT_ASSIGN_OR_RETURN(entry.neighbor, cur.ReadU32());
      NETOUT_ASSIGN_OR_RETURN(entry.count, cur.ReadU32());
      if (entry.neighbor >= hin->names_[info.dst].size()) {
        return Status::Corruption("CSR neighbor out of range");
      }
    }
    for (std::uint64_t row = 0; row + 1 < offsets.size(); ++row) {
      if (offsets[row] > offsets[row + 1] ||
          offsets[row + 1] > num_entries) {
        return Status::Corruption("CSR offsets not monotone");
      }
      for (std::uint64_t i = offsets[row]; i < offsets[row + 1]; ++i) {
        reversed.emplace_back(entries[i].neighbor,
                              static_cast<LocalId>(row), entries[i].count);
      }
    }
    Csr forward = Csr::FromRaw(std::move(offsets), std::move(entries));
    if (forward.num_rows() != num_rows) {
      return Status::Corruption("CSR reconstruction failed");
    }
    hin->forward_.push_back(std::move(forward));
    hin->reverse_.push_back(
        Csr::FromEdges(hin->names_[info.dst].size(), std::move(reversed)));
  }

  if (is_v1) {
    hin->ComputeSketches();
  } else {
    hin->forward_sketch_.reserve(num_edge_types);
    hin->reverse_sketch_.reserve(num_edge_types);
    for (std::uint64_t e = 0; e < num_edge_types; ++e) {
      NETOUT_ASSIGN_OR_RETURN(AdjacencySketch fwd, ReadSketch(&cur));
      NETOUT_ASSIGN_OR_RETURN(AdjacencySketch rev, ReadSketch(&cur));
      const Csr& fwd_csr = hin->forward_[e];
      const Csr& rev_csr = hin->reverse_[e];
      if (fwd.rows != fwd_csr.num_rows() ||
          fwd.entries != fwd_csr.num_entries() ||
          rev.rows != rev_csr.num_rows() ||
          rev.entries != rev_csr.num_entries()) {
        return Status::Corruption("adjacency sketch does not match CSR");
      }
      hin->forward_sketch_.push_back(fwd);
      hin->reverse_sketch_.push_back(rev);
    }
  }

  if (!cur.AtEnd()) {
    return Status::Corruption("trailing bytes after snapshot payload");
  }
  return HinPtr(hin);
}

}  // namespace netout
