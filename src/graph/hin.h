#ifndef NETOUT_GRAPH_HIN_H_
#define NETOUT_GRAPH_HIN_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "graph/csr.h"
#include "graph/schema.h"
#include "graph/types.h"

namespace netout {

class GraphDelta;
class SegmentStore;
struct ShardedOptions;

/// Degree-sum sketch of one stored adjacency direction, computed once at
/// graph build (and persisted in the binary snapshot) so the query
/// planner can estimate per-hop expansion cardinalities without touching
/// the CSR arrays.
struct AdjacencySketch {
  std::uint64_t rows = 0;             // source-side vertex count
  std::uint64_t entries = 0;          // distinct (src, dst) pairs
  std::uint64_t multiplicity = 0;     // total parallel-edge count
  std::uint64_t max_row_entries = 0;  // largest row degree

  /// Mean out-degree (distinct neighbors) of a source vertex.
  double AvgRowEntries() const {
    return rows == 0 ? 0.0
                     : static_cast<double>(entries) / static_cast<double>(rows);
  }

  friend bool operator==(const AdjacencySketch& a,
                         const AdjacencySketch& b) = default;
};

/// An immutable heterogeneous information network (Definition 1 of the
/// paper): multi-typed vertices with named identities and typed links.
///
/// Storage model:
///  * vertices of each type are numbered contiguously (LocalId) and carry
///    a unique name within their type;
///  * every edge type is stored twice as CSR adjacency — forward
///    (src-type row -> dst-type neighbors) and reverse — so any meta-path
///    hop is a single indexed row scan regardless of declared direction;
///  * parallel links are coalesced into per-neighbor multiplicities, which
///    is exactly what path-instance counting needs.
///
/// Instances are produced by GraphBuilder (builder.h) or LoadHin* (io.h)
/// and are immutable afterwards: concurrent queries need no locking.
///
/// Mutation model (delta.h, DESIGN.md §14): a built Hin is a *root*
/// (epoch 0). MutableHin::Commit publishes overlay Hins — a shared base
/// pointer plus an immutable GraphDelta — at increasing epochs. Overlay
/// instances answer every accessor below through the combined view
/// (added vertices, tombstones, patched adjacency rows); they are just
/// as immutable as roots, so a HinPtr is a consistent snapshot either
/// way and queries pin one for their whole lifetime.
class Hin {
 public:
  const Schema& schema() const {
    return base_ ? base_->schema_ : schema_;
  }

  /// Snapshot epoch: 0 for a root graph, the overlay's delta epoch
  /// otherwise. Strictly increases across commits of one MutableHin.
  std::uint64_t epoch() const;

  /// True when this is an overlay snapshot (base + delta).
  bool has_overlay() const { return overlay_ != nullptr; }

  /// The delta overlay, or null for a root graph.
  const GraphDelta* overlay() const { return overlay_.get(); }

  /// True when the (root) adjacency is served from mmapped shard
  /// segments (segment.h) instead of in-memory CSR arrays. Orthogonal
  /// to has_overlay(): an overlay can sit on a sharded root.
  bool is_sharded() const { return shard_store() != nullptr; }

  /// The segment store backing a sharded graph (possibly through an
  /// overlay), or null for in-memory storage. For residency telemetry;
  /// adjacency reads go through StepRow/Neighbors as always.
  const SegmentStore* shard_store() const {
    return base_ ? base_->shards_.get() : shards_.get();
  }

  /// Number of vertices of `type`.
  std::size_t NumVertices(TypeId type) const;

  /// Total vertices across all types.
  std::size_t TotalVertices() const;

  /// Total links counting multiplicity (each conceptual edge once, not
  /// double-counted for its two stored directions).
  std::uint64_t TotalEdges() const;

  /// Name of a vertex. Aborts on out-of-range references (programming
  /// error; use FindVertex for user input).
  const std::string& VertexName(VertexRef v) const;

  /// Looks up a vertex by type and name. kNotFound if absent.
  Result<VertexRef> FindVertex(TypeId type, std::string_view name) const;
  Result<VertexRef> FindVertex(std::string_view type_name,
                               std::string_view name) const;

  /// Adjacency rows for one resolved meta-path hop. In-memory-base
  /// only: aborts on overlay snapshots (rows may be patched row-by-row)
  /// and on sharded graphs (rows live in mapped segments, there is no
  /// whole-CSR array) — use StepRow (or Neighbors), which every
  /// traversal-path caller does.
  const Csr& Adjacency(const EdgeStep& step) const;

  /// One adjacency row of the step, overlay-aware: a patched row when
  /// the delta touched it, the base CSR row otherwise. Sorted ascending
  /// by neighbor id, duplicates coalesced — bitwise what Csr::FromEdges
  /// would produce for the mutated edge multiset. Empty when `row` is
  /// out of range (e.g. an added vertex with no edges yet).
  std::span<const CsrEntry> StepRow(const EdgeStep& step, LocalId row) const;

  /// Degree-sum sketch of the adjacency `step` resolves to (overlay-
  /// aware: reflects patched rows and added vertices exactly).
  const AdjacencySketch& StepSketch(const EdgeStep& step) const;

  /// Neighbors of `v` along `step` (empty if v is out of range).
  std::span<const CsrEntry> Neighbors(VertexRef v,
                                      const EdgeStep& step) const;

  /// Approximate heap footprint in bytes.
  std::size_t MemoryBytes() const;

 private:
  friend class GraphBuilder;
  friend class MutableHin;
  friend Result<std::shared_ptr<const Hin>> LoadHinBinary(
      std::string_view path);
  friend Result<std::shared_ptr<const Hin>> FlattenHin(
      const std::shared_ptr<const Hin>& hin);
  friend Result<std::shared_ptr<const Hin>> LoadShardedHin(
      std::string_view dir, const ShardedOptions& options);

  Hin() = default;

  /// Rebuilds forward_sketch_ / reverse_sketch_ from the CSR arrays
  /// (graph build, and snapshot versions predating sketch persistence).
  void ComputeSketches();

  /// The root this overlay sits on (always a root — overlays are
  /// flattened to depth 1 over it), or null for root graphs. The stored
  /// arrays below are populated only for roots; overlay instances
  /// delegate to `base_` + `overlay_`.
  std::shared_ptr<const Hin> base_;
  std::shared_ptr<const GraphDelta> overlay_;

  /// Mapped-segment adjacency backing (segment.h), set only on sharded
  /// roots; forward_/reverse_ stay empty then and StepRow dispatches
  /// here. Sketches and name tables are always in-memory.
  std::shared_ptr<const SegmentStore> shards_;

  Schema schema_;
  // names_[type][local] is the vertex name; name_index_[type] maps
  // name -> local id.
  std::vector<std::vector<std::string>> names_;
  std::vector<std::unordered_map<std::string, LocalId>> name_index_;
  // forward_[edge_type] / reverse_[edge_type]
  std::vector<Csr> forward_;
  std::vector<Csr> reverse_;
  std::vector<AdjacencySketch> forward_sketch_;
  std::vector<AdjacencySketch> reverse_sketch_;
};

using HinPtr = std::shared_ptr<const Hin>;

}  // namespace netout

#endif  // NETOUT_GRAPH_HIN_H_
