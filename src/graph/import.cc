#include "graph/import.h"

#include <sstream>
#include <unordered_map>

#include "common/binary_io.h"
#include "common/string_util.h"
#include "graph/builder.h"

namespace netout {

Result<std::vector<std::string>> ParseCsvLine(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');  // escaped quote
          i += 2;
          continue;
        }
        quoted = false;
        ++i;
        continue;
      }
      current.push_back(c);
      ++i;
      continue;
    }
    if (c == '"' && current.empty()) {
      quoted = true;
      ++i;
      continue;
    }
    if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
      ++i;
      continue;
    }
    current.push_back(c);
    ++i;
  }
  if (quoted) {
    return Status::ParseError("unterminated quoted CSV field");
  }
  fields.push_back(std::move(current));
  return fields;
}

namespace {

/// Resolves (or registers) a vertex type by name.
Result<TypeId> EnsureVertexType(GraphBuilder* builder,
                                std::string_view name) {
  auto existing = builder->schema().FindVertexType(name);
  if (existing.ok()) return existing;
  return builder->AddVertexType(name);
}

/// Resolves (or registers) an edge type, validating endpoint agreement
/// when it already exists.
Result<EdgeTypeId> EnsureEdgeType(GraphBuilder* builder,
                                  std::string_view name, TypeId src,
                                  TypeId dst) {
  auto existing = builder->schema().FindEdgeType(name);
  if (existing.ok()) {
    const EdgeTypeInfo& info = builder->schema().edge_type(existing.value());
    if (info.src != src || info.dst != dst) {
      return Status::InvalidArgument(
          "edge type '" + std::string(name) +
          "' is declared with different endpoint types by another table");
    }
    return existing;
  }
  return builder->AddEdgeType(name, src, dst);
}

}  // namespace

Result<HinPtr> ImportCsvTables(std::span<const CsvTableSpec> tables) {
  GraphBuilder builder;
  for (const CsvTableSpec& table : tables) {
    NETOUT_ASSIGN_OR_RETURN(TypeId row_type,
                            EnsureVertexType(&builder, table.vertex_type));

    // Pre-resolve link target/edge types so schema errors surface before
    // any row is processed.
    struct ResolvedLink {
      std::size_t column_index = 0;
      TypeId target = kInvalidTypeId;
      EdgeTypeId edge = kInvalidEdgeTypeId;
      char separator = '\0';
    };
    std::vector<ResolvedLink> links(table.links.size());
    for (std::size_t l = 0; l < table.links.size(); ++l) {
      NETOUT_ASSIGN_OR_RETURN(
          links[l].target,
          EnsureVertexType(&builder, table.links[l].vertex_type));
      NETOUT_ASSIGN_OR_RETURN(
          links[l].edge, EnsureEdgeType(&builder, table.links[l].edge_type,
                                        row_type, links[l].target));
      links[l].separator = table.links[l].separator;
    }

    NETOUT_ASSIGN_OR_RETURN(std::string data,
                            ReadFileToString(table.path));
    std::istringstream stream(data);
    std::string line;
    if (!std::getline(stream, line)) {
      return Status::ParseError(table.path + ": missing CSV header");
    }
    if (!line.empty() && line.back() == '\r') line.pop_back();
    NETOUT_ASSIGN_OR_RETURN(std::vector<std::string> header,
                            ParseCsvLine(line));
    std::unordered_map<std::string, std::size_t> column_index;
    for (std::size_t c = 0; c < header.size(); ++c) {
      column_index[AsciiToLower(StrTrim(header[c]))] = c;
    }
    auto find_column = [&](const std::string& name) -> Result<std::size_t> {
      auto it = column_index.find(AsciiToLower(name));
      if (it == column_index.end()) {
        return Status::InvalidArgument(table.path + ": no column named '" +
                                       name + "'");
      }
      return it->second;
    };
    NETOUT_ASSIGN_OR_RETURN(const std::size_t key_index,
                            find_column(table.key_column));
    for (std::size_t l = 0; l < table.links.size(); ++l) {
      NETOUT_ASSIGN_OR_RETURN(links[l].column_index,
                              find_column(table.links[l].column));
    }

    std::size_t line_no = 1;
    while (std::getline(stream, line)) {
      ++line_no;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (StrTrim(line).empty()) continue;
      NETOUT_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                              ParseCsvLine(line));
      if (fields.size() != header.size()) {
        return Status::ParseError(
            table.path + ":" + std::to_string(line_no) + ": expected " +
            std::to_string(header.size()) + " fields, got " +
            std::to_string(fields.size()));
      }
      const std::string_view key = StrTrim(fields[key_index]);
      if (key.empty()) {
        return Status::ParseError(table.path + ":" +
                                  std::to_string(line_no) +
                                  ": empty key column");
      }
      NETOUT_ASSIGN_OR_RETURN(VertexRef row,
                              builder.AddVertex(row_type, key));
      for (const ResolvedLink& link : links) {
        const std::string& cell = fields[link.column_index];
        std::vector<std::string> values;
        if (link.separator == '\0') {
          values.push_back(cell);
        } else {
          values = StrSplit(cell, link.separator);
        }
        for (const std::string& raw : values) {
          const std::string_view value = StrTrim(raw);
          if (value.empty()) continue;
          NETOUT_ASSIGN_OR_RETURN(VertexRef target,
                                  builder.AddVertex(link.target, value));
          NETOUT_RETURN_IF_ERROR(builder.AddEdge(link.edge, row, target));
        }
      }
    }
  }
  return builder.Finish();
}

}  // namespace netout
