#include "graph/segment.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>
#include <numeric>
#include <utility>

#include "common/binary_io.h"
#include "common/crc32c.h"
#include "common/logging.h"

namespace netout {
namespace {

// The payload is mmapped and read in place as raw u64/CsrEntry arrays,
// so the format is only valid where the in-memory layout matches the
// little-endian on-disk one. A big-endian port would need a byte-swap
// load path; fail the build loudly instead of corrupting silently.
static_assert(std::endian::native == std::endian::little,
              "segment files are little-endian and read in place");
static_assert(sizeof(CsrEntry) == 8 && alignof(CsrEntry) <= 8,
              "CsrEntry must match the packed on-disk entry layout");

constexpr std::string_view kSegmentMagic = "NOUTSEG1";
constexpr std::string_view kManifestMagic = "NOUTSHD1";
constexpr std::uint32_t kSegmentVersion = 1;
constexpr std::size_t kSegmentHeaderBytes = 64;
constexpr std::string_view kManifestName = "MANIFEST.nshd";

// Hard ceilings long before arithmetic can wrap: rows are LocalIds and
// a segment's entry count at 8 bytes apiece must stay far under off_t.
constexpr std::uint64_t kMaxRows = std::uint64_t{1} << 32;
constexpr std::uint64_t kMaxSegmentEntries = std::uint64_t{1} << 48;

std::string ErrnoMessage(std::string_view what, std::string_view path) {
  return std::string(what) + " '" + std::string(path) +
         "': " + std::strerror(errno);
}

std::string SegmentFileName(EdgeTypeId edge, Direction dir,
                            std::size_t seq) {
  return "e" + std::to_string(edge) +
         (dir == Direction::kForward ? "_f_" : "_r_") + std::to_string(seq) +
         ".seg";
}

std::size_t RelationIndex(const EdgeStep& step) {
  return std::size_t{2} * step.edge_type +
         (step.direction == Direction::kReverse ? 1 : 0);
}

std::uint64_t PayloadBytes(std::uint64_t row_count,
                           std::uint64_t entry_count) {
  return (row_count + 1) * sizeof(std::uint64_t) +
         entry_count * sizeof(CsrEntry);
}

std::string EncodeSegmentHeader(EdgeTypeId edge, Direction dir,
                                std::uint64_t row_begin,
                                std::uint64_t row_count,
                                std::uint64_t entry_count,
                                std::uint64_t payload_bytes,
                                std::uint32_t crc) {
  std::string header;
  header.reserve(kSegmentHeaderBytes);
  header.append(kSegmentMagic);
  AppendU32(&header, kSegmentVersion);
  AppendU32(&header, crc);
  AppendU32(&header, edge);
  AppendU32(&header, dir == Direction::kForward ? 0 : 1);
  AppendU64(&header, row_begin);
  AppendU64(&header, row_count);
  AppendU64(&header, entry_count);
  AppendU64(&header, payload_bytes);
  AppendU64(&header, 0);  // reserved
  NETOUT_CHECK(header.size() == kSegmentHeaderBytes)
      << "segment header layout drifted";
  return header;
}

void AppendSketch(std::string* buf, const AdjacencySketch& sketch) {
  AppendU64(buf, sketch.rows);
  AppendU64(buf, sketch.entries);
  AppendU64(buf, sketch.multiplicity);
  AppendU64(buf, sketch.max_row_entries);
}

Result<AdjacencySketch> ReadSketch(Cursor* cur) {
  AdjacencySketch sketch;
  NETOUT_ASSIGN_OR_RETURN(sketch.rows, cur->ReadU64());
  NETOUT_ASSIGN_OR_RETURN(sketch.entries, cur->ReadU64());
  NETOUT_ASSIGN_OR_RETURN(sketch.multiplicity, cur->ReadU64());
  NETOUT_ASSIGN_OR_RETURN(sketch.max_row_entries, cur->ReadU64());
  return sketch;
}

/// write + fsync + close: the caller fsyncs the directory once after
/// all segments, before the manifest rename publishes them.
Status WriteFileDurable(const std::string& path, std::string_view data) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Status::IoError(ErrnoMessage("cannot open", path));
  Status status = WriteFull(fd, data.data(), data.size());
  if (status.ok() && ::fsync(fd) != 0) {
    status = Status::IoError(ErrnoMessage("fsync failed", path));
  }
  if (::close(fd) != 0 && status.ok()) {
    status = Status::IoError(ErrnoMessage("close failed", path));
  }
  return status;
}

Status FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("cannot open directory", dir));
  }
  Status status = Status::OK();
  if (::fsync(fd) != 0) {
    status = Status::IoError(ErrnoMessage("fsync failed", dir));
  }
  if (::close(fd) != 0 && status.ok()) {
    status = Status::IoError(ErrnoMessage("close failed", dir));
  }
  return status;
}

}  // namespace

// ---------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------

Status BuildShardedHin(const Hin& hin, std::string_view dir_view,
                       const ShardWriterOptions& options) {
  if (options.target_segment_bytes == 0) {
    return Status::InvalidArgument("target_segment_bytes must be nonzero");
  }
  const std::string dir(dir_view);
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError(ErrnoMessage("cannot create directory", dir));
  }

  const Schema& schema = hin.schema();
  std::string manifest;
  AppendU64(&manifest, schema.num_vertex_types());
  for (TypeId t = 0; t < schema.num_vertex_types(); ++t) {
    AppendString(&manifest, schema.VertexTypeName(t));
  }
  AppendU64(&manifest, schema.num_edge_types());
  for (EdgeTypeId e = 0; e < schema.num_edge_types(); ++e) {
    const EdgeTypeInfo& info = schema.edge_type(e);
    AppendString(&manifest, info.name);
    AppendU32(&manifest, info.src);
    AppendU32(&manifest, info.dst);
  }
  for (TypeId t = 0; t < schema.num_vertex_types(); ++t) {
    AppendU64(&manifest, hin.NumVertices(t));
    for (LocalId v = 0; v < hin.NumVertices(t); ++v) {
      AppendString(&manifest, hin.VertexName(VertexRef{t, v}));
    }
  }
  for (EdgeTypeId e = 0; e < schema.num_edge_types(); ++e) {
    AppendSketch(&manifest, hin.StepSketch(EdgeStep{e, Direction::kForward}));
    AppendSketch(&manifest, hin.StepSketch(EdgeStep{e, Direction::kReverse}));
  }
  AppendU64(&manifest, options.target_segment_bytes);

  for (EdgeTypeId e = 0; e < schema.num_edge_types(); ++e) {
    for (const Direction dir_kind :
         {Direction::kForward, Direction::kReverse}) {
      const EdgeStep step{e, dir_kind};
      const std::size_t rows = hin.NumVertices(schema.StepSource(step));

      // Physical placement order. Renumbering sorts by descending
      // degree (stable, so ties keep ascending logical id); the
      // logical->physical permutation is persisted so readers translate
      // row lookups — logical ids never change, which is what keeps
      // top-k tie-breaking (candidate-index based) bitwise stable.
      std::vector<LocalId> order(rows);
      std::iota(order.begin(), order.end(), LocalId{0});
      if (options.renumber && rows > 0) {
        std::vector<std::uint64_t> degree(rows);
        for (std::size_t row = 0; row < rows; ++row) {
          degree[row] = hin.StepRow(step, static_cast<LocalId>(row)).size();
        }
        std::stable_sort(order.begin(), order.end(),
                         [&degree](LocalId a, LocalId b) {
                           return degree[a] > degree[b];
                         });
      }
      AppendU64(&manifest, rows);
      AppendU32(&manifest, options.renumber ? 1 : 0);
      if (options.renumber) {
        std::vector<std::uint32_t> perm(rows);
        for (std::size_t phys = 0; phys < rows; ++phys) {
          perm[order[phys]] = static_cast<std::uint32_t>(phys);
        }
        for (const std::uint32_t p : perm) AppendU32(&manifest, p);
      }

      struct SegmentMeta {
        std::uint64_t row_begin;
        std::uint64_t row_count;
        std::uint64_t entry_count;
        std::uint64_t payload_bytes;
        std::uint32_t crc;
      };
      std::vector<SegmentMeta> segments;
      std::size_t phys = 0;
      std::size_t seq = 0;
      while (phys < rows) {
        const std::uint64_t row_begin = phys;
        std::vector<std::uint64_t> offsets(1, 0);
        std::string entry_bytes;
        while (phys < rows) {
          const std::span<const CsrEntry> row =
              hin.StepRow(step, order[phys]);
          for (const CsrEntry& entry : row) {
            AppendU32(&entry_bytes, entry.neighbor);
            AppendU32(&entry_bytes, entry.count);
          }
          offsets.push_back(offsets.back() + row.size());
          ++phys;
          if (offsets.size() * sizeof(std::uint64_t) + entry_bytes.size() >=
              options.target_segment_bytes) {
            break;
          }
        }
        std::string payload;
        payload.reserve(offsets.size() * sizeof(std::uint64_t) +
                        entry_bytes.size());
        for (const std::uint64_t offset : offsets) {
          AppendU64(&payload, offset);
        }
        payload += entry_bytes;
        const std::uint32_t crc = Crc32c(payload);
        const SegmentMeta meta{row_begin, phys - row_begin, offsets.back(),
                               payload.size(), crc};
        std::string file = EncodeSegmentHeader(e, dir_kind, meta.row_begin,
                                               meta.row_count,
                                               meta.entry_count,
                                               meta.payload_bytes, crc);
        file += payload;
        NETOUT_RETURN_IF_ERROR(WriteFileDurable(
            dir + "/" + SegmentFileName(e, dir_kind, seq), file));
        segments.push_back(meta);
        ++seq;
      }
      AppendU64(&manifest, segments.size());
      for (const SegmentMeta& meta : segments) {
        AppendU64(&manifest, meta.row_begin);
        AppendU64(&manifest, meta.row_count);
        AppendU64(&manifest, meta.entry_count);
        AppendU64(&manifest, meta.payload_bytes);
        AppendU32(&manifest, meta.crc);
      }
    }
  }

  // Durability ordering: every segment (and its directory entry) must
  // be on disk before the manifest rename makes them reachable — a
  // crash between here and the rename leaves at worst orphan segments,
  // never a manifest pointing at missing/partial ones.
  NETOUT_RETURN_IF_ERROR(FsyncDir(dir));
  return WriteStringToFileAtomic(dir + "/" + std::string(kManifestName),
                                 WrapWithChecksum(kManifestMagic, manifest));
}

// ---------------------------------------------------------------------
// Loader — every on-disk value is untrusted until proven in range
// ---------------------------------------------------------------------

Result<HinPtr> LoadShardedHin(std::string_view dir_view,
                              const ShardedOptions& options) {
  const std::string dir(dir_view);
  NETOUT_ASSIGN_OR_RETURN(
      std::string file_data,
      ReadFileToString(dir + "/" + std::string(kManifestName)));
  NETOUT_ASSIGN_OR_RETURN(std::string payload,
                          UnwrapChecked(kManifestMagic, file_data));
  Cursor cur(payload);

  auto hin = std::shared_ptr<Hin>(new Hin());
  NETOUT_ASSIGN_OR_RETURN(std::uint64_t num_types, cur.ReadU64());
  for (std::uint64_t t = 0; t < num_types; ++t) {
    NETOUT_ASSIGN_OR_RETURN(std::string name, cur.ReadString());
    NETOUT_RETURN_IF_ERROR(hin->schema_.AddVertexType(name).status());
  }
  NETOUT_ASSIGN_OR_RETURN(std::uint64_t num_edge_types, cur.ReadU64());
  for (std::uint64_t e = 0; e < num_edge_types; ++e) {
    NETOUT_ASSIGN_OR_RETURN(std::string name, cur.ReadString());
    NETOUT_ASSIGN_OR_RETURN(std::uint32_t src, cur.ReadU32());
    NETOUT_ASSIGN_OR_RETURN(std::uint32_t dst, cur.ReadU32());
    if (src >= num_types || dst >= num_types) {
      return Status::Corruption("edge type endpoint out of range");
    }
    NETOUT_RETURN_IF_ERROR(hin->schema_
                               .AddEdgeType(name, static_cast<TypeId>(src),
                                            static_cast<TypeId>(dst))
                               .status());
  }

  hin->names_.resize(num_types);
  hin->name_index_.resize(num_types);
  for (std::uint64_t t = 0; t < num_types; ++t) {
    NETOUT_ASSIGN_OR_RETURN(std::uint64_t count, cur.ReadU64());
    hin->names_[t].reserve(count);
    for (std::uint64_t v = 0; v < count; ++v) {
      NETOUT_ASSIGN_OR_RETURN(std::string name, cur.ReadString());
      const auto local = static_cast<LocalId>(hin->names_[t].size());
      auto [it, inserted] = hin->name_index_[t].emplace(name, local);
      (void)it;
      if (!inserted) {
        return Status::Corruption("duplicate vertex name in shard manifest");
      }
      hin->names_[t].push_back(std::move(name));
    }
  }

  hin->forward_sketch_.reserve(num_edge_types);
  hin->reverse_sketch_.reserve(num_edge_types);
  for (std::uint64_t e = 0; e < num_edge_types; ++e) {
    NETOUT_ASSIGN_OR_RETURN(AdjacencySketch fwd, ReadSketch(&cur));
    NETOUT_ASSIGN_OR_RETURN(AdjacencySketch rev, ReadSketch(&cur));
    const EdgeTypeInfo& info =
        hin->schema_.edge_type(static_cast<EdgeTypeId>(e));
    if (fwd.rows != hin->names_[info.src].size() ||
        rev.rows != hin->names_[info.dst].size()) {
      return Status::Corruption("adjacency sketch rows mismatch");
    }
    hin->forward_sketch_.push_back(fwd);
    hin->reverse_sketch_.push_back(rev);
  }
  NETOUT_ASSIGN_OR_RETURN(std::uint64_t target_segment_bytes, cur.ReadU64());
  (void)target_segment_bytes;  // informational; not needed to read

  std::unique_ptr<SegmentStore> store(new SegmentStore());
  store->dir_ = dir;
  store->budget_bytes_ = options.budget_bytes;
  store->relations_.resize(2 * num_edge_types);

  for (std::uint64_t e = 0; e < num_edge_types; ++e) {
    const auto edge = static_cast<EdgeTypeId>(e);
    for (const Direction dir_kind :
         {Direction::kForward, Direction::kReverse}) {
      const EdgeStep step{edge, dir_kind};
      SegmentStore::Relation& rel =
          store->relations_[RelationIndex(step)];
      const EdgeTypeInfo& info = hin->schema_.edge_type(edge);
      const std::size_t expected_rows =
          dir_kind == Direction::kForward ? hin->names_[info.src].size()
                                          : hin->names_[info.dst].size();
      const std::size_t dst_count = dir_kind == Direction::kForward
                                        ? hin->names_[info.dst].size()
                                        : hin->names_[info.src].size();

      NETOUT_ASSIGN_OR_RETURN(rel.rows, cur.ReadU64());
      if (rel.rows != expected_rows) {
        return Status::Corruption("relation row count mismatch");
      }
      NETOUT_ASSIGN_OR_RETURN(std::uint32_t renumbered, cur.ReadU32());
      if (renumbered > 1) {
        return Status::Corruption("invalid renumbering flag");
      }
      if (renumbered == 1) {
        rel.perm.resize(rel.rows);
        std::vector<char> seen(rel.rows, 0);
        for (std::uint64_t row = 0; row < rel.rows; ++row) {
          NETOUT_ASSIGN_OR_RETURN(rel.perm[row], cur.ReadU32());
          if (rel.perm[row] >= rel.rows || seen[rel.perm[row]] != 0) {
            return Status::Corruption("renumbering map is not a permutation");
          }
          seen[rel.perm[row]] = 1;
        }
      }

      NETOUT_ASSIGN_OR_RETURN(std::uint64_t num_segments, cur.ReadU64());
      // Each segment spans >= 1 row, so the count is bounded by rows.
      if (num_segments > rel.rows || rel.rows > kMaxRows) {
        return Status::Corruption("segment count exceeds relation rows");
      }
      std::uint64_t next_row = 0;
      std::uint64_t relation_entries = 0;
      for (std::uint64_t seq = 0; seq < num_segments; ++seq) {
        auto seg = std::make_unique<SegmentStore::Segment>();
        NETOUT_ASSIGN_OR_RETURN(seg->row_begin, cur.ReadU64());
        NETOUT_ASSIGN_OR_RETURN(seg->row_count, cur.ReadU64());
        NETOUT_ASSIGN_OR_RETURN(seg->entry_count, cur.ReadU64());
        NETOUT_ASSIGN_OR_RETURN(seg->payload_bytes, cur.ReadU64());
        NETOUT_ASSIGN_OR_RETURN(seg->crc, cur.ReadU32());
        if (seg->row_begin != next_row) {
          return Status::Corruption(
              "segment row ranges overlap or leave a gap");
        }
        if (seg->row_count == 0 || seg->row_count > rel.rows - next_row) {
          return Status::Corruption("segment row count out of range");
        }
        if (seg->entry_count > kMaxSegmentEntries) {
          return Status::Corruption("segment entry count out of range");
        }
        if (seg->payload_bytes !=
            PayloadBytes(seg->row_count, seg->entry_count)) {
          return Status::Corruption(
              "segment payload size inconsistent with row/entry counts");
        }
        next_row += seg->row_count;
        relation_entries += seg->entry_count;

        const std::string path =
            dir + "/" + SegmentFileName(edge, dir_kind, seq);
        const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
        if (fd < 0) {
          return Status::Corruption(
              ErrnoMessage("manifest references missing segment", path));
        }
        struct stat st{};
        if (::fstat(fd, &st) != 0) {
          const Status status =
              Status::IoError(ErrnoMessage("fstat failed", path));
          ::close(fd);
          return status;
        }
        const std::uint64_t expected_size =
            kSegmentHeaderBytes + seg->payload_bytes;
        if (st.st_size < 0 ||
            static_cast<std::uint64_t>(st.st_size) != expected_size) {
          ::close(fd);
          return Status::Corruption("segment file '" + path +
                                    "' truncated or oversized");
        }
        void* map = ::mmap(nullptr, expected_size, PROT_READ, MAP_PRIVATE,
                           fd, 0);
        ::close(fd);
        if (map == MAP_FAILED) {
          return Status::IoError(ErrnoMessage("mmap failed", path));
        }
        seg->map_base = static_cast<const unsigned char*>(map);
        seg->map_bytes = expected_size;
        // The store owns the mapping from here on: any later validation
        // failure unwinds through ~SegmentStore and munmaps it.
        rel.segments.push_back(std::move(seg));
        SegmentStore::Segment& owned = *rel.segments.back();

        // Cursor has no raw-bytes read; compare the magic in place.
        if (std::string_view(reinterpret_cast<const char*>(owned.map_base),
                             kSegmentMagic.size()) != kSegmentMagic) {
          return Status::Corruption("segment file '" + path +
                                    "' has wrong magic");
        }
        Cursor fields(std::string_view(
            reinterpret_cast<const char*>(owned.map_base) +
                kSegmentMagic.size(),
            kSegmentHeaderBytes - kSegmentMagic.size()));
        NETOUT_ASSIGN_OR_RETURN(std::uint32_t version, fields.ReadU32());
        NETOUT_ASSIGN_OR_RETURN(std::uint32_t file_crc, fields.ReadU32());
        NETOUT_ASSIGN_OR_RETURN(std::uint32_t file_edge, fields.ReadU32());
        NETOUT_ASSIGN_OR_RETURN(std::uint32_t file_dir, fields.ReadU32());
        NETOUT_ASSIGN_OR_RETURN(std::uint64_t file_row_begin,
                                fields.ReadU64());
        NETOUT_ASSIGN_OR_RETURN(std::uint64_t file_row_count,
                                fields.ReadU64());
        NETOUT_ASSIGN_OR_RETURN(std::uint64_t file_entry_count,
                                fields.ReadU64());
        NETOUT_ASSIGN_OR_RETURN(std::uint64_t file_payload_bytes,
                                fields.ReadU64());
        if (version != kSegmentVersion) {
          return Status::Corruption("segment file '" + path +
                                    "' has unsupported version");
        }
        if (file_crc != owned.crc || file_edge != edge ||
            file_dir != (dir_kind == Direction::kForward ? 0u : 1u) ||
            file_row_begin != owned.row_begin ||
            file_row_count != owned.row_count ||
            file_entry_count != owned.entry_count ||
            file_payload_bytes != owned.payload_bytes) {
          return Status::Corruption("segment file '" + path +
                                    "' header disagrees with manifest");
        }

        owned.offsets = reinterpret_cast<const std::uint64_t*>(
            owned.map_base + kSegmentHeaderBytes);
        owned.entries = reinterpret_cast<const CsrEntry*>(
            owned.map_base + kSegmentHeaderBytes +
            (owned.row_count + 1) * sizeof(std::uint64_t));
        if (owned.offsets[0] != 0) {
          return Status::Corruption("segment file '" + path +
                                    "' offsets do not start at zero");
        }
        for (std::uint64_t row = 0; row < owned.row_count; ++row) {
          if (owned.offsets[row] > owned.offsets[row + 1]) {
            return Status::Corruption("segment file '" + path +
                                      "' offsets not monotone");
          }
        }
        if (owned.offsets[owned.row_count] != owned.entry_count) {
          return Status::Corruption(
              "segment file '" + path +
              "' offsets point past the entry array");
        }
        if (options.verify_checksums) {
          const std::uint32_t actual = Crc32c(
              owned.map_base + kSegmentHeaderBytes, owned.payload_bytes);
          if (actual != owned.crc) {
            return Status::Corruption("segment file '" + path +
                                      "' checksum mismatch");
          }
        }
        // Neighbor ids index the destination type's name table (and the
        // next hop's rows); an out-of-range one would abort VertexName.
        for (std::uint64_t i = 0; i < owned.entry_count; ++i) {
          if (owned.entries[i].neighbor >= dst_count) {
            return Status::Corruption("segment file '" + path +
                                      "' neighbor id out of range");
          }
        }
      }
      if (next_row != rel.rows) {
        return Status::Corruption("segments do not cover all rows");
      }
      const AdjacencySketch& sketch =
          dir_kind == Direction::kForward ? hin->forward_sketch_[e]
                                          : hin->reverse_sketch_[e];
      if (relation_entries != sketch.entries) {
        return Status::Corruption(
            "segment entry totals disagree with the adjacency sketch");
      }
      rel.seg_starts.reserve(rel.segments.size());
      for (const auto& seg : rel.segments) {
        rel.seg_starts.push_back(seg->row_begin);
      }
    }
  }
  if (!cur.AtEnd()) {
    return Status::Corruption("trailing bytes after shard manifest");
  }

  for (const SegmentStore::Relation& rel : store->relations_) {
    for (const auto& seg : rel.segments) {
      store->all_segments_.push_back(seg.get());
    }
  }
  // Under a budget, start cold: validation touched every page, which
  // would otherwise leave the whole graph resident but unaccounted.
  if (store->budget_bytes_ > 0) {
    for (const SegmentStore::Segment* seg : store->all_segments_) {
      ::madvise(const_cast<void*>(static_cast<const void*>(seg->map_base)),
                seg->map_bytes, MADV_DONTNEED);
    }
  }

  hin->shards_ = std::shared_ptr<const SegmentStore>(store.release());
  return HinPtr(hin);
}

// ---------------------------------------------------------------------
// SegmentStore
// ---------------------------------------------------------------------

SegmentStore::~SegmentStore() {
  for (Relation& rel : relations_) {
    for (auto& seg : rel.segments) {
      if (seg->map_base != nullptr) {
        ::munmap(const_cast<void*>(static_cast<const void*>(seg->map_base)),
                 seg->map_bytes);
      }
    }
  }
}

std::span<const CsrEntry> SegmentStore::Row(const EdgeStep& step,
                                            LocalId row) const {
  const std::size_t idx = RelationIndex(step);
  NETOUT_CHECK(idx < relations_.size()) << "edge type out of range";
  const Relation& rel = relations_[idx];
  if (row >= rel.rows) return {};
  const std::uint64_t phys = rel.perm.empty() ? row : rel.perm[row];
  const auto it =
      std::upper_bound(rel.seg_starts.begin(), rel.seg_starts.end(), phys);
  const Segment& seg =
      *rel.segments[static_cast<std::size_t>(it - rel.seg_starts.begin()) -
                    1];
  Touch(seg);
  const std::uint64_t local = phys - seg.row_begin;
  const std::uint64_t begin = seg.offsets[local];
  const std::uint64_t end = seg.offsets[local + 1];
  return std::span<const CsrEntry>(seg.entries + begin,
                                   static_cast<std::size_t>(end - begin));
}

void SegmentStore::Touch(const Segment& seg) const {
  seg.referenced.store(true, std::memory_order_relaxed);
  if (seg.resident.load(std::memory_order_acquire)) return;
  // Exactly one thread wins the cold->resident flip and does the
  // accounting, so resident_bytes_ never double-counts a segment.
  if (seg.resident.exchange(true, std::memory_order_acq_rel)) return;
  faults_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t now =
      resident_bytes_.fetch_add(seg.payload_bytes,
                                std::memory_order_relaxed) +
      seg.payload_bytes;
  if (budget_bytes_ != 0 && now > budget_bytes_) EvictToBudget();
}

void SegmentStore::EvictToBudget() const {
  MutexLock lock(evict_mu_);
  const std::size_t n = all_segments_.size();
  if (n == 0) return;
  // Clock (second chance): a referenced bit earns one extra sweep, so a
  // segment in active use is never the victim of its own fault. The
  // 2n+1 bound guarantees termination when everything stays referenced
  // faster than the hand moves. Eviction only drops pages
  // (MADV_DONTNEED on a read-only file mapping); spans handed out
  // earlier stay valid and simply refault from disk.
  std::size_t scanned = 0;
  while (resident_bytes_.load(std::memory_order_relaxed) > budget_bytes_ &&
         scanned < 2 * n + 1) {
    const Segment& seg = *all_segments_[clock_hand_];
    clock_hand_ = (clock_hand_ + 1) % n;
    ++scanned;
    if (!seg.resident.load(std::memory_order_relaxed)) continue;
    if (seg.referenced.exchange(false, std::memory_order_relaxed)) continue;
    if (!seg.resident.exchange(false, std::memory_order_acq_rel)) continue;
    resident_bytes_.fetch_sub(seg.payload_bytes, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    ::madvise(const_cast<void*>(static_cast<const void*>(seg.map_base)),
              seg.map_bytes, MADV_DONTNEED);
  }
}

ShardedStorageStats SegmentStore::Stats() const {
  ShardedStorageStats stats;
  stats.budget_bytes = budget_bytes_;
  stats.segments = all_segments_.size();
  for (const Segment* seg : all_segments_) {
    stats.mapped_bytes += seg->payload_bytes;
    if (seg->resident.load(std::memory_order_relaxed)) {
      stats.resident_segments += 1;
    }
  }
  stats.resident_bytes = resident_bytes_.load(std::memory_order_relaxed);
  stats.faults = faults_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  return stats;
}

std::size_t SegmentStore::MemoryBytes() const {
  std::size_t bytes = resident_bytes_.load(std::memory_order_relaxed);
  for (const Relation& rel : relations_) {
    bytes += rel.perm.capacity() * sizeof(std::uint32_t);
    bytes += rel.segments.capacity() * sizeof(std::unique_ptr<Segment>);
    bytes += rel.segments.size() * sizeof(Segment);
    bytes += rel.seg_starts.capacity() * sizeof(std::uint64_t);
  }
  bytes += all_segments_.capacity() * sizeof(const Segment*);
  return bytes;
}

}  // namespace netout
