#ifndef NETOUT_GRAPH_SCHEMA_H_
#define NETOUT_GRAPH_SCHEMA_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "graph/types.h"

namespace netout {

/// Metadata for one registered edge type (a directed relation).
struct EdgeTypeInfo {
  std::string name;   // e.g. "writes"
  TypeId src = kInvalidTypeId;
  TypeId dst = kInvalidTypeId;
};

/// The network schema: the registry of vertex types and edge types.
///
/// This is the paper's schema graph (Figure 1a). Vertex type names are
/// case-insensitive and unique; edge type names are case-insensitive and
/// unique. An *undirected* conceptual link (paper—author) is registered as
/// a single directed edge type; the reverse orientation is always
/// traversable (Hin stores both CSR directions).
class Schema {
 public:
  Schema() = default;

  /// Registers a vertex type; fails with kAlreadyExists on duplicates.
  Result<TypeId> AddVertexType(std::string_view name);

  /// Registers an edge type between two existing vertex types.
  Result<EdgeTypeId> AddEdgeType(std::string_view name, TypeId src,
                                 TypeId dst);

  /// Name -> id lookups (case-insensitive). kNotFound when missing.
  Result<TypeId> FindVertexType(std::string_view name) const;
  Result<EdgeTypeId> FindEdgeType(std::string_view name) const;

  const std::string& VertexTypeName(TypeId id) const;
  const EdgeTypeInfo& edge_type(EdgeTypeId id) const;

  std::size_t num_vertex_types() const { return vertex_type_names_.size(); }
  std::size_t num_edge_types() const { return edge_types_.size(); }

  /// Resolves the unique edge step connecting `from` to `to` (in either
  /// orientation). Errors:
  ///   kNotFound         — no edge type connects the pair;
  ///   kInvalidArgument  — more than one step matches (the caller must
  ///                       disambiguate with an explicit edge-type name).
  /// A self-relation (src == dst) matches both orientations of the same
  /// edge type and is therefore always ambiguous.
  Result<EdgeStep> ResolveStep(TypeId from, TypeId to) const;

  /// Resolves a step by explicit edge-type name, validating that the named
  /// relation connects `from` to `to` in some orientation.
  Result<EdgeStep> ResolveStepByName(std::string_view edge_name, TypeId from,
                                     TypeId to) const;

  /// All steps leaving `from` (used to enumerate length-2 meta-paths for
  /// the pre-materialization index).
  std::vector<EdgeStep> StepsFrom(TypeId from) const;

  /// Destination vertex type of a step.
  TypeId StepTarget(const EdgeStep& step) const;
  /// Source vertex type of a step.
  TypeId StepSource(const EdgeStep& step) const;

 private:
  std::vector<std::string> vertex_type_names_;
  std::unordered_map<std::string, TypeId> vertex_type_index_;  // lower-cased
  std::vector<EdgeTypeInfo> edge_types_;
  std::unordered_map<std::string, EdgeTypeId> edge_type_index_;  // lower-cased
};

}  // namespace netout

#endif  // NETOUT_GRAPH_SCHEMA_H_
