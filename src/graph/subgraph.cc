#include "graph/subgraph.h"

#include <unordered_set>
#include <vector>

#include "graph/builder.h"

namespace netout {

Result<HinPtr> InducedSubgraph(const Hin& hin,
                               std::span<const VertexRef> vertices) {
  const Schema& schema = hin.schema();

  // Selection bitmap per type for O(1) membership tests.
  std::vector<std::vector<bool>> selected(schema.num_vertex_types());
  for (TypeId t = 0; t < schema.num_vertex_types(); ++t) {
    selected[t].assign(hin.NumVertices(t), false);
  }
  for (const VertexRef& v : vertices) {
    if (v.type >= schema.num_vertex_types() ||
        v.local >= hin.NumVertices(v.type)) {
      return Status::OutOfRange("subgraph selection references an unknown "
                                "vertex");
    }
    selected[v.type][v.local] = true;
  }

  GraphBuilder builder;
  for (TypeId t = 0; t < schema.num_vertex_types(); ++t) {
    NETOUT_RETURN_IF_ERROR(
        builder.AddVertexType(schema.VertexTypeName(t)).status());
  }
  for (EdgeTypeId e = 0; e < schema.num_edge_types(); ++e) {
    const EdgeTypeInfo& info = schema.edge_type(e);
    NETOUT_RETURN_IF_ERROR(
        builder.AddEdgeType(info.name, info.src, info.dst).status());
  }
  // Add vertices in original local-id order so renumbering is dense and
  // deterministic.
  for (TypeId t = 0; t < schema.num_vertex_types(); ++t) {
    for (LocalId v = 0; v < hin.NumVertices(t); ++v) {
      if (!selected[t][v]) continue;
      NETOUT_RETURN_IF_ERROR(
          builder.AddVertex(t, hin.VertexName(VertexRef{t, v})).status());
    }
  }
  // Links with both endpoints selected, multiplicity preserved.
  for (EdgeTypeId e = 0; e < schema.num_edge_types(); ++e) {
    const EdgeTypeInfo& info = schema.edge_type(e);
    const EdgeStep step{e, Direction::kForward};
    const std::size_t rows = hin.NumVertices(info.src);
    for (LocalId src = 0; src < rows; ++src) {
      if (!selected[info.src][src]) continue;
      NETOUT_ASSIGN_OR_RETURN(
          VertexRef new_src,
          builder.AddVertex(info.src,
                            hin.VertexName(VertexRef{info.src, src})));
      for (const CsrEntry& entry : hin.StepRow(step, src)) {
        if (!selected[info.dst][entry.neighbor]) continue;
        NETOUT_ASSIGN_OR_RETURN(
            VertexRef new_dst,
            builder.AddVertex(
                info.dst,
                hin.VertexName(VertexRef{info.dst, entry.neighbor})));
        NETOUT_RETURN_IF_ERROR(
            builder.AddEdge(e, new_src, new_dst, entry.count));
      }
    }
  }
  return builder.Finish();
}

Result<HinPtr> NeighborhoodSubgraph(const Hin& hin, VertexRef seed,
                                    std::size_t hops) {
  const Schema& schema = hin.schema();
  if (seed.type >= schema.num_vertex_types() ||
      seed.local >= hin.NumVertices(seed.type)) {
    return Status::OutOfRange("seed vertex is unknown");
  }
  std::unordered_set<VertexRef, VertexRefHash> visited = {seed};
  std::vector<VertexRef> frontier = {seed};
  for (std::size_t hop = 0; hop < hops; ++hop) {
    std::vector<VertexRef> next;
    for (const VertexRef& v : frontier) {
      for (const EdgeStep& step : schema.StepsFrom(v.type)) {
        const TypeId target = schema.StepTarget(step);
        for (const CsrEntry& entry : hin.Neighbors(v, step)) {
          const VertexRef neighbor{target, entry.neighbor};
          if (visited.insert(neighbor).second) {
            next.push_back(neighbor);
          }
        }
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  const std::vector<VertexRef> all(visited.begin(), visited.end());
  return InducedSubgraph(hin, all);
}

}  // namespace netout
