#include "graph/hin.h"

#include <algorithm>

#include "common/logging.h"

namespace netout {

std::size_t Hin::NumVertices(TypeId type) const {
  NETOUT_CHECK(type < names_.size()) << "vertex type out of range";
  return names_[type].size();
}

std::size_t Hin::TotalVertices() const {
  std::size_t total = 0;
  for (const auto& per_type : names_) {
    total += per_type.size();
  }
  return total;
}

std::uint64_t Hin::TotalEdges() const {
  std::uint64_t total = 0;
  for (const Csr& csr : forward_) {
    total += csr.TotalEdgeCount();
  }
  return total;
}

const std::string& Hin::VertexName(VertexRef v) const {
  NETOUT_CHECK(v.type < names_.size()) << "vertex type out of range";
  NETOUT_CHECK(v.local < names_[v.type].size()) << "vertex id out of range";
  return names_[v.type][v.local];
}

Result<VertexRef> Hin::FindVertex(TypeId type, std::string_view name) const {
  if (type >= names_.size()) {
    return Status::OutOfRange("vertex type id out of range");
  }
  auto it = name_index_[type].find(std::string(name));
  if (it == name_index_[type].end()) {
    return Status::NotFound("no vertex named '" + std::string(name) +
                            "' of type '" + schema_.VertexTypeName(type) +
                            "'");
  }
  return VertexRef{type, it->second};
}

Result<VertexRef> Hin::FindVertex(std::string_view type_name,
                                  std::string_view name) const {
  NETOUT_ASSIGN_OR_RETURN(TypeId type, schema_.FindVertexType(type_name));
  return FindVertex(type, name);
}

const Csr& Hin::Adjacency(const EdgeStep& step) const {
  NETOUT_CHECK(step.edge_type < forward_.size()) << "edge type out of range";
  return step.direction == Direction::kForward ? forward_[step.edge_type]
                                               : reverse_[step.edge_type];
}

const AdjacencySketch& Hin::StepSketch(const EdgeStep& step) const {
  NETOUT_CHECK(step.edge_type < forward_sketch_.size())
      << "edge type out of range";
  return step.direction == Direction::kForward
             ? forward_sketch_[step.edge_type]
             : reverse_sketch_[step.edge_type];
}

void Hin::ComputeSketches() {
  const auto sketch_of = [](const Csr& csr) {
    AdjacencySketch s;
    s.rows = csr.num_rows();
    s.entries = csr.num_entries();
    s.multiplicity = csr.TotalEdgeCount();
    for (LocalId row = 0; row < s.rows; ++row) {
      s.max_row_entries = std::max<std::uint64_t>(s.max_row_entries,
                                                  csr.RowDegree(row));
    }
    return s;
  };
  forward_sketch_.clear();
  reverse_sketch_.clear();
  forward_sketch_.reserve(forward_.size());
  reverse_sketch_.reserve(reverse_.size());
  for (const Csr& csr : forward_) forward_sketch_.push_back(sketch_of(csr));
  for (const Csr& csr : reverse_) reverse_sketch_.push_back(sketch_of(csr));
}

std::span<const CsrEntry> Hin::Neighbors(VertexRef v,
                                         const EdgeStep& step) const {
  const Csr& csr = Adjacency(step);
  NETOUT_CHECK(schema_.StepSource(step) == v.type)
      << "vertex type does not match the step's source type";
  return csr.Row(v.local);
}

std::size_t Hin::MemoryBytes() const {
  std::size_t bytes = 0;
  for (std::size_t t = 0; t < names_.size(); ++t) {
    for (const std::string& name : names_[t]) {
      bytes += name.capacity() + sizeof(std::string);
    }
    // Rough estimate for the hash index: bucket + node overhead.
    bytes += name_index_[t].size() * (sizeof(void*) * 4 + sizeof(LocalId));
  }
  for (const Csr& csr : forward_) bytes += csr.MemoryBytes();
  for (const Csr& csr : reverse_) bytes += csr.MemoryBytes();
  return bytes;
}

}  // namespace netout
