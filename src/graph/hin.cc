#include "graph/hin.h"

#include <algorithm>

#include "common/logging.h"
#include "graph/delta.h"
#include "graph/segment.h"

namespace netout {

std::uint64_t Hin::epoch() const {
  return overlay_ ? overlay_->epoch() : 0;
}

std::size_t Hin::NumVertices(TypeId type) const {
  const Hin& root = base_ ? *base_ : *this;
  NETOUT_CHECK(type < root.names_.size()) << "vertex type out of range";
  std::size_t count = root.names_[type].size();
  if (overlay_) count += overlay_->NumAddedVertices(type);
  return count;
}

std::size_t Hin::TotalVertices() const {
  const Hin& root = base_ ? *base_ : *this;
  std::size_t total = 0;
  for (std::size_t t = 0; t < root.names_.size(); ++t) {
    total += root.names_[t].size();
    if (overlay_) total += overlay_->NumAddedVertices(static_cast<TypeId>(t));
  }
  return total;
}

std::uint64_t Hin::TotalEdges() const {
  if (overlay_) return overlay_->TotalEdges();
  if (shards_) {
    // Sharded roots keep no CSR arrays; the persisted sketches carry
    // the exact multiplicity totals.
    std::uint64_t total = 0;
    for (const AdjacencySketch& sketch : forward_sketch_) {
      total += sketch.multiplicity;
    }
    return total;
  }
  std::uint64_t total = 0;
  for (const Csr& csr : forward_) {
    total += csr.TotalEdgeCount();
  }
  return total;
}

const std::string& Hin::VertexName(VertexRef v) const {
  const Hin& root = base_ ? *base_ : *this;
  NETOUT_CHECK(v.type < root.names_.size()) << "vertex type out of range";
  const auto root_count = static_cast<LocalId>(root.names_[v.type].size());
  if (v.local < root_count) {
    // Tombstoned vertices keep their name: numbering (and naming) of
    // retired slots stays stable for diagnostics and persistence.
    return root.names_[v.type][v.local];
  }
  NETOUT_CHECK(overlay_ != nullptr &&
               v.local < root_count + overlay_->NumAddedVertices(v.type))
      << "vertex id out of range";
  return overlay_->AddedName(v.type, v.local, root_count);
}

Result<VertexRef> Hin::FindVertex(TypeId type, std::string_view name) const {
  const Hin& root = base_ ? *base_ : *this;
  if (type >= root.names_.size()) {
    return Status::OutOfRange("vertex type id out of range");
  }
  VertexRef found{};
  auto it = root.name_index_[type].find(std::string(name));
  if (it != root.name_index_[type].end()) {
    found = VertexRef{type, it->second};
  } else if (overlay_) {
    if (auto added = overlay_->FindAdded(type, name); added.has_value()) {
      found = VertexRef{type, *added};
    }
  }
  if (!found.valid() || (overlay_ && overlay_->IsDead(found))) {
    return Status::NotFound("no vertex named '" + std::string(name) +
                            "' of type '" +
                            root.schema_.VertexTypeName(type) + "'");
  }
  return found;
}

Result<VertexRef> Hin::FindVertex(std::string_view type_name,
                                  std::string_view name) const {
  NETOUT_ASSIGN_OR_RETURN(TypeId type, schema().FindVertexType(type_name));
  return FindVertex(type, name);
}

const Csr& Hin::Adjacency(const EdgeStep& step) const {
  NETOUT_CHECK(overlay_ == nullptr)
      << "Adjacency() is base-only; overlay snapshots must read rows "
         "through StepRow()/Neighbors()";
  NETOUT_CHECK(shards_ == nullptr)
      << "Adjacency() is in-memory-only; sharded graphs have no whole-"
         "CSR arrays — read rows through StepRow()/Neighbors()";
  NETOUT_CHECK(step.edge_type < forward_.size()) << "edge type out of range";
  return step.direction == Direction::kForward ? forward_[step.edge_type]
                                               : reverse_[step.edge_type];
}

std::span<const CsrEntry> Hin::StepRow(const EdgeStep& step,
                                       LocalId row) const {
  const Hin& root = base_ ? *base_ : *this;
  NETOUT_CHECK(step.edge_type < root.schema_.num_edge_types())
      << "edge type out of range";
  if (overlay_) {
    if (const std::vector<CsrEntry>* patched =
            overlay_->PatchedRow(step, row)) {
      return std::span<const CsrEntry>(patched->data(), patched->size());
    }
  }
  // Sharded roots answer from the mapped segments; SegmentStore::Row is
  // bitwise what the in-memory Csr row would hold (logical ids, sorted,
  // coalesced) and returns {} for out-of-range rows like Csr::Row.
  if (root.shards_) return root.shards_->Row(step, row);
  const Csr& csr = step.direction == Direction::kForward
                       ? root.forward_[step.edge_type]
                       : root.reverse_[step.edge_type];
  // Csr::Row returns {} for out-of-range rows, which covers overlay-
  // added vertices whose rows were never patched.
  return csr.Row(row);
}

const AdjacencySketch& Hin::StepSketch(const EdgeStep& step) const {
  if (overlay_) return overlay_->Sketch(step);
  NETOUT_CHECK(step.edge_type < forward_sketch_.size())
      << "edge type out of range";
  return step.direction == Direction::kForward
             ? forward_sketch_[step.edge_type]
             : reverse_sketch_[step.edge_type];
}

void Hin::ComputeSketches() {
  const auto sketch_of = [](const Csr& csr) {
    AdjacencySketch s;
    s.rows = csr.num_rows();
    s.entries = csr.num_entries();
    s.multiplicity = csr.TotalEdgeCount();
    for (LocalId row = 0; row < s.rows; ++row) {
      s.max_row_entries = std::max<std::uint64_t>(s.max_row_entries,
                                                  csr.RowDegree(row));
    }
    return s;
  };
  forward_sketch_.clear();
  reverse_sketch_.clear();
  forward_sketch_.reserve(forward_.size());
  reverse_sketch_.reserve(reverse_.size());
  for (const Csr& csr : forward_) forward_sketch_.push_back(sketch_of(csr));
  for (const Csr& csr : reverse_) reverse_sketch_.push_back(sketch_of(csr));
}

std::span<const CsrEntry> Hin::Neighbors(VertexRef v,
                                         const EdgeStep& step) const {
  NETOUT_CHECK(schema().StepSource(step) == v.type)
      << "vertex type does not match the step's source type";
  return StepRow(step, v.local);
}

std::size_t Hin::MemoryBytes() const {
  if (overlay_) {
    // Overlay snapshot: the shared root plus the delta's own storage.
    return base_->MemoryBytes() + overlay_->MemoryBytes();
  }
  std::size_t bytes = 0;
  for (std::size_t t = 0; t < names_.size(); ++t) {
    for (const std::string& name : names_[t]) {
      bytes += name.capacity() + sizeof(std::string);
    }
    // Rough estimate for the hash index: bucket + node overhead.
    bytes += name_index_[t].size() * (sizeof(void*) * 4 + sizeof(LocalId));
  }
  for (const Csr& csr : forward_) bytes += csr.MemoryBytes();
  for (const Csr& csr : reverse_) bytes += csr.MemoryBytes();
  if (shards_) bytes += shards_->MemoryBytes();
  bytes += (forward_sketch_.capacity() + reverse_sketch_.capacity()) *
           sizeof(AdjacencySketch);
  return bytes;
}

}  // namespace netout
