#ifndef NETOUT_GRAPH_TYPES_H_
#define NETOUT_GRAPH_TYPES_H_

#include <cstdint>
#include <functional>
#include <limits>

#include "common/hash.h"

namespace netout {

/// Identifier of a vertex *type* (author, paper, venue, term, ...).
using TypeId = std::uint16_t;

/// Identifier of an edge type (a named, directed relation between two
/// vertex types, e.g. "writes": author -> paper).
using EdgeTypeId = std::uint16_t;

/// Type-local vertex identifier: vertices of each type are numbered
/// contiguously from zero. All per-type arrays (neighbor vectors, CSR
/// rows) are indexed by LocalId, which keeps them dense and compact.
using LocalId = std::uint32_t;

inline constexpr TypeId kInvalidTypeId =
    std::numeric_limits<TypeId>::max();
inline constexpr EdgeTypeId kInvalidEdgeTypeId =
    std::numeric_limits<EdgeTypeId>::max();
inline constexpr LocalId kInvalidLocalId =
    std::numeric_limits<LocalId>::max();

/// A fully-qualified vertex reference: (type, type-local id).
struct VertexRef {
  TypeId type = kInvalidTypeId;
  LocalId local = kInvalidLocalId;

  bool valid() const { return type != kInvalidTypeId; }

  friend bool operator==(const VertexRef& a, const VertexRef& b) {
    return a.type == b.type && a.local == b.local;
  }
  friend bool operator!=(const VertexRef& a, const VertexRef& b) {
    return !(a == b);
  }
  friend bool operator<(const VertexRef& a, const VertexRef& b) {
    return a.type != b.type ? a.type < b.type : a.local < b.local;
  }
};

struct VertexRefHash {
  std::size_t operator()(const VertexRef& v) const {
    return HashCombine(std::hash<TypeId>()(v.type),
                       std::hash<LocalId>()(v.local));
  }
};

/// Traversal direction of an edge type. An edge type declared as
/// src -> dst is traversed kForward when stepping src-to-dst and
/// kReverse when stepping dst-to-src.
enum class Direction : std::uint8_t { kForward = 0, kReverse = 1 };

inline Direction Opposite(Direction d) {
  return d == Direction::kForward ? Direction::kReverse
                                  : Direction::kForward;
}

/// One hop of a resolved meta-path: which edge type to follow and in
/// which orientation.
struct EdgeStep {
  EdgeTypeId edge_type = kInvalidEdgeTypeId;
  Direction direction = Direction::kForward;

  friend bool operator==(const EdgeStep& a, const EdgeStep& b) {
    return a.edge_type == b.edge_type && a.direction == b.direction;
  }
};

}  // namespace netout

#endif  // NETOUT_GRAPH_TYPES_H_
