#ifndef NETOUT_GRAPH_CSR_H_
#define NETOUT_GRAPH_CSR_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/types.h"

namespace netout {

/// One adjacency entry: a neighbor and the multiplicity (number of
/// parallel edges) of the link. Multiplicities let path-instance counting
/// treat repeated links correctly.
struct CsrEntry {
  LocalId neighbor;
  std::uint32_t count;

  friend bool operator==(const CsrEntry& a, const CsrEntry& b) {
    return a.neighbor == b.neighbor && a.count == b.count;
  }
};

/// Immutable compressed-sparse-row adjacency for one (edge type,
/// direction): row r lists the neighbors reachable from source vertex r
/// (type-local ids on both sides), sorted by neighbor id with duplicate
/// links coalesced into counts.
class Csr {
 public:
  Csr() : offsets_(1, 0) {}

  /// Builds from (src, dst, count) triples. `num_rows` fixes the row-index
  /// space (the number of vertices of the source type). Triples may be
  /// unsorted and may repeat; repeats are summed.
  static Csr FromEdges(
      std::size_t num_rows,
      std::vector<std::tuple<LocalId, LocalId, std::uint32_t>> edges);

  /// Neighbors of `row`, sorted ascending by neighbor id.
  std::span<const CsrEntry> Row(LocalId row) const {
    if (row + 1 >= offsets_.size()) return {};
    return std::span<const CsrEntry>(entries_.data() + offsets_[row],
                                     offsets_[row + 1] - offsets_[row]);
  }

  /// Number of distinct neighbors of `row`.
  std::size_t RowDegree(LocalId row) const { return Row(row).size(); }

  /// Sum of multiplicities in `row` (total parallel-edge count).
  std::uint64_t RowEdgeCount(LocalId row) const;

  std::size_t num_rows() const { return offsets_.size() - 1; }
  std::size_t num_entries() const { return entries_.size(); }

  /// Total number of edges counting multiplicity.
  std::uint64_t TotalEdgeCount() const;

  /// Approximate heap footprint in bytes (index-size accounting).
  std::size_t MemoryBytes() const {
    return offsets_.capacity() * sizeof(std::uint64_t) +
           entries_.capacity() * sizeof(CsrEntry);
  }

  /// Raw access for serialization.
  const std::vector<std::uint64_t>& offsets() const { return offsets_; }
  const std::vector<CsrEntry>& entries() const { return entries_; }

  /// Reconstructs from raw arrays (deserialization). Returns an empty CSR
  /// if the arrays are inconsistent; the caller validates sizes upfront.
  static Csr FromRaw(std::vector<std::uint64_t> offsets,
                     std::vector<CsrEntry> entries);

 private:
  std::vector<std::uint64_t> offsets_;  // size num_rows + 1
  std::vector<CsrEntry> entries_;
};

}  // namespace netout

#endif  // NETOUT_GRAPH_CSR_H_
