#ifndef NETOUT_GRAPH_IMPORT_H_
#define NETOUT_GRAPH_IMPORT_H_

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "graph/hin.h"

namespace netout {

/// One foreign-key-style column of a CSV table: every (row, referenced
/// value) pair becomes an edge from the row's vertex to a vertex of
/// `vertex_type` named by the cell value.
struct CsvLinkSpec {
  std::string column;       // CSV header name
  std::string vertex_type;  // referenced vertex type (created on demand)
  std::string edge_type;    // edge type name, row type -> referenced type
  /// 0 = single-valued cell; otherwise the cell is split on this
  /// character (e.g. ';' for multi-author columns). Empty values are
  /// skipped.
  char separator = '\0';
};

/// One CSV table mapped onto the network: each row becomes a vertex of
/// `vertex_type` named by `key_column`, and each link spec contributes
/// edges. The file must have a header row; fields follow RFC-4180-style
/// quoting ("" escapes a quote inside a quoted field).
struct CsvTableSpec {
  std::string path;
  std::string vertex_type;
  std::string key_column;
  std::vector<CsvLinkSpec> links;
};

/// Builds a heterogeneous network from relational-style CSV tables — the
/// paper's Section 8 observation that query-based outlier detection
/// "can easily be extended ... to traditional relational databases": a
/// row is a vertex, foreign keys are typed edges, and the meta-path
/// query language applies unchanged.
///
/// Edge types shared by several tables must agree on their endpoint
/// types. Rows with a duplicate key merge into one vertex (their links
/// accumulate).
///
/// Example (bibliography):
///   papers.csv: id,authors,venue,terms
///   ImportCsvTables({{
///     "papers.csv", "paper", "id",
///     {{"authors", "author", "written_by", ';'},
///      {"venue",   "venue",  "published_in"},
///      {"terms",   "term",   "has_term", ';'}},
///   }});
Result<HinPtr> ImportCsvTables(std::span<const CsvTableSpec> tables);

/// Splits one CSV record into fields (RFC-4180-style quoting). Exposed
/// for testing and for callers with their own row sources. Fails on an
/// unterminated quoted field.
Result<std::vector<std::string>> ParseCsvLine(std::string_view line);

}  // namespace netout

#endif  // NETOUT_GRAPH_IMPORT_H_
