#ifndef NETOUT_GRAPH_IO_H_
#define NETOUT_GRAPH_IO_H_

#include <string_view>

#include "common/result.h"
#include "graph/hin.h"

namespace netout {

/// Text interchange format (tab-separated, one record per line):
///
///   # comment
///   T <type_name>
///   E <edge_name> <src_type> <dst_type>
///   V <type_name> <vertex_name>
///   L <edge_name> <src_vertex_name> <dst_vertex_name>
///
/// Declarations must precede use. `V` lines are optional for vertices
/// that appear in `L` lines (links create their endpoints); they exist to
/// declare isolated vertices. Vertex names may contain spaces but not
/// tabs or newlines.
Result<HinPtr> LoadHinText(std::string_view path);
Status SaveHinText(const Hin& hin, std::string_view path);

/// Versioned binary snapshot with an FNV-1a integrity checksum over the
/// payload. Layout (little-endian):
///   magic "NOUTHIN1" | u64 payload_size | payload | u64 fnv1a(payload)
/// Payload: schema (type/edge-type names + endpoints), per-type vertex
/// name tables, per-edge-type forward CSR arrays (reverse CSRs are
/// rebuilt on load).
Status SaveHinBinary(const Hin& hin, std::string_view path);
Result<HinPtr> LoadHinBinary(std::string_view path);

}  // namespace netout

#endif  // NETOUT_GRAPH_IO_H_
