#include "graph/schema.h"

#include <limits>

#include "common/logging.h"
#include "common/string_util.h"

namespace netout {

Result<TypeId> Schema::AddVertexType(std::string_view name) {
  if (StrTrim(name).empty()) {
    return Status::InvalidArgument("vertex type name must not be empty");
  }
  std::string key = AsciiToLower(name);
  if (vertex_type_index_.count(key) > 0) {
    return Status::AlreadyExists("vertex type '" + std::string(name) +
                                 "' already registered");
  }
  if (vertex_type_names_.size() >=
      static_cast<std::size_t>(std::numeric_limits<TypeId>::max())) {
    return Status::OutOfRange("too many vertex types");
  }
  TypeId id = static_cast<TypeId>(vertex_type_names_.size());
  vertex_type_names_.emplace_back(name);
  vertex_type_index_.emplace(std::move(key), id);
  return id;
}

Result<EdgeTypeId> Schema::AddEdgeType(std::string_view name, TypeId src,
                                       TypeId dst) {
  if (StrTrim(name).empty()) {
    return Status::InvalidArgument("edge type name must not be empty");
  }
  if (src >= vertex_type_names_.size() || dst >= vertex_type_names_.size()) {
    return Status::OutOfRange("edge type references unknown vertex type");
  }
  std::string key = AsciiToLower(name);
  if (edge_type_index_.count(key) > 0) {
    return Status::AlreadyExists("edge type '" + std::string(name) +
                                 "' already registered");
  }
  if (edge_types_.size() >=
      static_cast<std::size_t>(std::numeric_limits<EdgeTypeId>::max())) {
    return Status::OutOfRange("too many edge types");
  }
  EdgeTypeId id = static_cast<EdgeTypeId>(edge_types_.size());
  edge_types_.push_back(EdgeTypeInfo{std::string(name), src, dst});
  edge_type_index_.emplace(std::move(key), id);
  return id;
}

Result<TypeId> Schema::FindVertexType(std::string_view name) const {
  auto it = vertex_type_index_.find(AsciiToLower(name));
  if (it == vertex_type_index_.end()) {
    return Status::NotFound("unknown vertex type '" + std::string(name) +
                            "'");
  }
  return it->second;
}

Result<EdgeTypeId> Schema::FindEdgeType(std::string_view name) const {
  auto it = edge_type_index_.find(AsciiToLower(name));
  if (it == edge_type_index_.end()) {
    return Status::NotFound("unknown edge type '" + std::string(name) + "'");
  }
  return it->second;
}

const std::string& Schema::VertexTypeName(TypeId id) const {
  NETOUT_CHECK(id < vertex_type_names_.size());
  return vertex_type_names_[id];
}

const EdgeTypeInfo& Schema::edge_type(EdgeTypeId id) const {
  NETOUT_CHECK(id < edge_types_.size());
  return edge_types_[id];
}

Result<EdgeStep> Schema::ResolveStep(TypeId from, TypeId to) const {
  EdgeStep found;
  int matches = 0;
  for (std::size_t i = 0; i < edge_types_.size(); ++i) {
    const EdgeTypeInfo& info = edge_types_[i];
    const EdgeTypeId id = static_cast<EdgeTypeId>(i);
    if (info.src == from && info.dst == to) {
      found = EdgeStep{id, Direction::kForward};
      ++matches;
    }
    if (info.dst == from && info.src == to) {
      found = EdgeStep{id, Direction::kReverse};
      ++matches;
    }
  }
  if (matches == 0) {
    return Status::NotFound("no edge type connects '" +
                            VertexTypeName(from) + "' to '" +
                            VertexTypeName(to) + "'");
  }
  if (matches > 1) {
    return Status::InvalidArgument(
        "ambiguous relation between '" + VertexTypeName(from) + "' and '" +
        VertexTypeName(to) +
        "': multiple edge types match; annotate the meta-path with an edge "
        "type name");
  }
  return found;
}

Result<EdgeStep> Schema::ResolveStepByName(std::string_view edge_name,
                                           TypeId from, TypeId to) const {
  NETOUT_ASSIGN_OR_RETURN(EdgeTypeId id, FindEdgeType(edge_name));
  const EdgeTypeInfo& info = edge_types_[id];
  if (info.src == from && info.dst == to) {
    return EdgeStep{id, Direction::kForward};
  }
  if (info.dst == from && info.src == to) {
    return EdgeStep{id, Direction::kReverse};
  }
  return Status::InvalidArgument(
      "edge type '" + std::string(edge_name) + "' does not connect '" +
      VertexTypeName(from) + "' to '" + VertexTypeName(to) + "'");
}

std::vector<EdgeStep> Schema::StepsFrom(TypeId from) const {
  std::vector<EdgeStep> steps;
  for (std::size_t i = 0; i < edge_types_.size(); ++i) {
    const EdgeTypeInfo& info = edge_types_[i];
    const EdgeTypeId id = static_cast<EdgeTypeId>(i);
    if (info.src == from) steps.push_back(EdgeStep{id, Direction::kForward});
    if (info.dst == from) steps.push_back(EdgeStep{id, Direction::kReverse});
  }
  return steps;
}

TypeId Schema::StepTarget(const EdgeStep& step) const {
  const EdgeTypeInfo& info = edge_type(step.edge_type);
  return step.direction == Direction::kForward ? info.dst : info.src;
}

TypeId Schema::StepSource(const EdgeStep& step) const {
  const EdgeTypeInfo& info = edge_type(step.edge_type);
  return step.direction == Direction::kForward ? info.src : info.dst;
}

}  // namespace netout
