#include "graph/builder.h"

#include <limits>
#include <utility>

#include "common/logging.h"

namespace netout {

Result<EdgeTypeId> GraphBuilder::AddEdgeType(std::string_view name,
                                             TypeId src, TypeId dst) {
  NETOUT_ASSIGN_OR_RETURN(EdgeTypeId id,
                          schema_.AddEdgeType(name, src, dst));
  edges_.resize(schema_.num_edge_types());
  return id;
}

Result<VertexRef> GraphBuilder::AddVertex(TypeId type,
                                          std::string_view name) {
  if (type >= schema_.num_vertex_types()) {
    return Status::OutOfRange("unknown vertex type id");
  }
  names_.resize(schema_.num_vertex_types());
  name_index_.resize(schema_.num_vertex_types());
  auto& index = name_index_[type];
  auto it = index.find(std::string(name));
  if (it != index.end()) {
    return VertexRef{type, it->second};
  }
  if (names_[type].size() >=
      static_cast<std::size_t>(std::numeric_limits<LocalId>::max())) {
    return Status::OutOfRange("too many vertices of type '" +
                              schema_.VertexTypeName(type) + "'");
  }
  LocalId local = static_cast<LocalId>(names_[type].size());
  names_[type].emplace_back(name);
  index.emplace(std::string(name), local);
  return VertexRef{type, local};
}

Status GraphBuilder::AddEdge(EdgeTypeId edge_type, VertexRef src,
                             VertexRef dst, std::uint32_t count) {
  if (edge_type >= schema_.num_edge_types()) {
    return Status::OutOfRange("unknown edge type id");
  }
  const EdgeTypeInfo& info = schema_.edge_type(edge_type);
  if (src.type != info.src || dst.type != info.dst) {
    return Status::InvalidArgument(
        "edge endpoints do not match edge type '" + info.name + "' (" +
        schema_.VertexTypeName(info.src) + " -> " +
        schema_.VertexTypeName(info.dst) + ")");
  }
  names_.resize(schema_.num_vertex_types());
  if (src.local >= names_[src.type].size() ||
      dst.local >= names_[dst.type].size()) {
    return Status::OutOfRange("edge references unknown vertex");
  }
  if (count == 0) {
    return Status::InvalidArgument("edge multiplicity must be positive");
  }
  edges_[edge_type].emplace_back(src.local, dst.local, count);
  return Status::OK();
}

Status GraphBuilder::AddEdgeByName(std::string_view edge_type_name,
                                   std::string_view src_name,
                                   std::string_view dst_name) {
  NETOUT_ASSIGN_OR_RETURN(EdgeTypeId edge_type,
                          schema_.FindEdgeType(edge_type_name));
  const EdgeTypeInfo& info = schema_.edge_type(edge_type);
  NETOUT_ASSIGN_OR_RETURN(VertexRef src, AddVertex(info.src, src_name));
  NETOUT_ASSIGN_OR_RETURN(VertexRef dst, AddVertex(info.dst, dst_name));
  return AddEdge(edge_type, src, dst);
}

std::size_t GraphBuilder::NumVertices(TypeId type) const {
  if (type >= names_.size()) return 0;
  return names_[type].size();
}

Result<HinPtr> GraphBuilder::Finish() {
  auto hin = std::shared_ptr<Hin>(new Hin());
  hin->schema_ = std::move(schema_);
  names_.resize(hin->schema_.num_vertex_types());
  name_index_.resize(hin->schema_.num_vertex_types());
  edges_.resize(hin->schema_.num_edge_types());
  hin->names_ = std::move(names_);
  hin->name_index_ = std::move(name_index_);

  hin->forward_.reserve(edges_.size());
  hin->reverse_.reserve(edges_.size());
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    const EdgeTypeInfo& info =
        hin->schema_.edge_type(static_cast<EdgeTypeId>(e));
    const std::size_t src_rows = hin->names_[info.src].size();
    const std::size_t dst_rows = hin->names_[info.dst].size();

    std::vector<std::tuple<LocalId, LocalId, std::uint32_t>> reversed;
    reversed.reserve(edges_[e].size());
    for (const auto& [src, dst, count] : edges_[e]) {
      reversed.emplace_back(dst, src, count);
    }
    hin->forward_.push_back(Csr::FromEdges(src_rows, std::move(edges_[e])));
    hin->reverse_.push_back(Csr::FromEdges(dst_rows, std::move(reversed)));
  }
  hin->ComputeSketches();

  // Reset to a pristine state so reuse is well-defined.
  schema_ = Schema();
  names_.clear();
  name_index_.clear();
  edges_.clear();
  return HinPtr(hin);
}

}  // namespace netout
