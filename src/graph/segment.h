#ifndef NETOUT_GRAPH_SEGMENT_H_
#define NETOUT_GRAPH_SEGMENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/sync.h"
#include "graph/hin.h"

namespace netout {

/// Out-of-core sharded graph storage (DESIGN.md §15).
///
/// A shard directory holds each relation's CSR partitioned by
/// source-vertex range into checksummed segment files that are
/// memory-mapped read-only and paged in on demand, so a graph larger
/// than RAM serves queries under a fixed `--graph-budget-mb` cap. The
/// whole mode hides behind `Hin::StepRow`/`StepSketch`: traversal,
/// PM/SPM build, and the planner never learn which storage answered.
///
/// Layout of one segment file (`e<edge>_<f|r>_<seq>.seg`), all fields
/// little-endian:
///
///   header (64 bytes):
///     magic           "NOUTSEG1" (8)
///     u32 version     1
///     u32 crc32c      CRC-32C of the payload bytes
///     u32 edge_type
///     u32 direction   0 forward / 1 reverse
///     u64 row_begin   first physical row of this segment
///     u64 row_count
///     u64 entry_count
///     u64 payload_bytes  == (row_count + 1) * 8 + entry_count * 8
///     u64 reserved    0
///   payload:
///     u64 offsets[row_count + 1]   segment-relative, offsets[0] == 0
///     CsrEntry entries[entry_count]  {u32 neighbor, u32 count}
///
/// Neighbor ids in entries are *logical* LocalIds. Degree-ordered
/// renumbering is purely physical: a persisted per-relation permutation
/// maps logical row -> physical placement, so external ids (and the
/// tie-break order of SelectTopK, which breaks on candidate index) are
/// byte-for-byte unaffected by renumbering. That is what makes the
/// oocore equivalence gate hold by construction.
///
/// The manifest (`MANIFEST.nshd`, standard netout container with magic
/// "NOUTSHD1") records schema, vertex names, adjacency sketches, the
/// per-relation permutations, and per-segment {row range, entry count,
/// payload bytes, CRC}. Durability ordering at build time: every
/// segment is written + fsynced, the directory is fsynced, and only
/// then is the manifest renamed into place — a crash mid-build can
/// never leave a manifest pointing at missing or partial segments.

class SegmentStore;

/// Build-time knobs for BuildShardedHin.
struct ShardWriterOptions {
  /// Target payload size at which a segment is cut. Small enough that
  /// eviction granularity tracks the budget, large enough that the
  /// per-segment residency bookkeeping stays negligible.
  std::uint64_t target_segment_bytes = std::uint64_t{1} << 20;

  /// Place rows in descending-degree order (ties by ascending logical
  /// id) so the hot skewed rows of a metapath workload share pages.
  /// Purely physical — logical ids are unchanged either way.
  bool renumber = true;
};

/// Load-time knobs for LoadShardedHin.
struct ShardedOptions {
  /// Advisory residency cap over segment payload bytes; 0 = unlimited.
  /// Enforced at segment granularity with a clock (second-chance)
  /// sweep that madvise(MADV_DONTNEED)s cold segments.
  std::uint64_t budget_bytes = 0;

  /// Verify each segment's CRC-32C on load (one sequential pass; the
  /// pages are dropped again afterwards when a budget is set).
  bool verify_checksums = true;
};

/// Residency telemetry surfaced in STATS and EXPLAIN PLAN.
struct ShardedStorageStats {
  std::uint64_t budget_bytes = 0;     // 0 = unlimited
  std::uint64_t mapped_bytes = 0;     // total payload bytes on disk
  std::uint64_t resident_bytes = 0;   // payload bytes of resident segments
  std::uint64_t segments = 0;
  std::uint64_t resident_segments = 0;
  std::uint64_t faults = 0;           // segment transitions cold -> resident
  std::uint64_t evictions = 0;        // clock evictions (DONTNEED issued)
};

/// Writes `hin` as a shard directory at `dir` (created if missing).
/// Works for root, overlay, and already-sharded snapshots — rows are
/// folded through StepRow, so the emitted segments always describe the
/// flattened graph at the snapshot's epoch.
Status BuildShardedHin(const Hin& hin, std::string_view dir,
                       const ShardWriterOptions& options = {});

/// Opens a shard directory as a Hin whose adjacency is answered from
/// the mapped segments. Every on-disk size, offset, id, and range is
/// treated as untrusted and validated before first dereference;
/// corrupt or truncated inputs return kCorruption, never crash.
Result<HinPtr> LoadShardedHin(std::string_view dir,
                              const ShardedOptions& options = {});

/// The mapped-segment backing of a sharded Hin: owns the mmapped files
/// and the clock residency manager. Reached via Hin::shard_store();
/// queries never touch it directly.
class SegmentStore {
 public:
  ~SegmentStore();

  SegmentStore(const SegmentStore&) = delete;
  SegmentStore& operator=(const SegmentStore&) = delete;

  /// One adjacency row (logical ids in, logical neighbor ids out).
  /// Sorted ascending by neighbor, duplicates coalesced — bitwise what
  /// the in-memory Csr row holds. Empty when `row` is out of range.
  /// Thread-safe; the returned span stays valid for the store's
  /// lifetime (eviction only drops pages, never unmaps).
  std::span<const CsrEntry> Row(const EdgeStep& step, LocalId row) const;

  /// Point-in-time residency counters.
  ShardedStorageStats Stats() const;

  /// Bookkeeping heap bytes plus currently-resident payload bytes.
  std::size_t MemoryBytes() const;

  const std::string& dir() const { return dir_; }

 private:
  friend Result<HinPtr> LoadShardedHin(std::string_view dir,
                                       const ShardedOptions& options);

  struct Segment {
    std::uint64_t row_begin = 0;  // physical
    std::uint64_t row_count = 0;
    std::uint64_t entry_count = 0;
    std::uint64_t payload_bytes = 0;
    std::uint32_t crc = 0;
    // Whole-file mapping (header + payload), PROT_READ MAP_PRIVATE.
    const unsigned char* map_base = nullptr;
    std::size_t map_bytes = 0;
    const std::uint64_t* offsets = nullptr;  // row_count + 1 entries
    const CsrEntry* entries = nullptr;
    // Residency is advisory accounting at segment granularity: an
    // evicted segment's pages refault transparently on next access.
    mutable std::atomic<bool> resident{false};
    mutable std::atomic<bool> referenced{false};  // clock second chance
  };

  struct Relation {
    std::uint64_t rows = 0;
    std::vector<std::uint32_t> perm;  // logical -> physical; empty = id
    std::vector<std::unique_ptr<Segment>> segments;  // contiguous ranges
    std::vector<std::uint64_t> seg_starts;  // segments[i]->row_begin
  };

  SegmentStore() = default;

  /// Marks the segment referenced/resident and triggers a clock sweep
  /// when the budget is exceeded.
  void Touch(const Segment& seg) const NETOUT_EXCLUDES(evict_mu_);
  void EvictToBudget() const NETOUT_EXCLUDES(evict_mu_);

  std::string dir_;
  std::uint64_t budget_bytes_ = 0;
  // relations_[2 * edge_type + (direction == kReverse)]
  std::vector<Relation> relations_;
  std::vector<const Segment*> all_segments_;  // clock sweep order

  mutable std::atomic<std::uint64_t> resident_bytes_{0};
  mutable std::atomic<std::uint64_t> faults_{0};
  mutable std::atomic<std::uint64_t> evictions_{0};
  mutable Mutex evict_mu_;
  mutable std::size_t clock_hand_ NETOUT_GUARDED_BY(evict_mu_) = 0;
};

}  // namespace netout

#endif  // NETOUT_GRAPH_SEGMENT_H_
