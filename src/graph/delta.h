#ifndef NETOUT_GRAPH_DELTA_H_
#define NETOUT_GRAPH_DELTA_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/sync.h"
#include "graph/hin.h"

namespace netout {

/// The mutation layer (DESIGN.md §14): the HIN stays "immutable base +
/// epoch-versioned delta overlay". A root Hin never changes after build;
/// every committed mutation batch publishes a *new* immutable overlay
/// Hin (base pointer + GraphDelta) at epoch N+1. Queries pin one
/// snapshot (HinPtr) for their lifetime, so a concurrent commit can
/// never change answers mid-query — old snapshots stay fully readable
/// until their last reader drops them.
///
/// The defining exactness property: every patched adjacency row in a
/// GraphDelta is stored fully merged, coalesced and sorted — exactly
/// the row `Csr::FromEdges` would produce for the mutated edge multiset
/// — so traversals (and the incrementally maintained PM/SPM indexes
/// built from them) are *bitwise* identical to a from-scratch rebuild
/// at the same epoch. See tests/integration/incremental_equivalence.

/// One immutable delta overlay: everything epoch N changed relative to
/// the root graph. Patched rows are complete replacement rows (not
/// diffs) shared across epochs via shared_ptr, so publishing epoch N+1
/// copies row *pointers*, not row storage.
class GraphDelta {
 public:
  using RowPtr = std::shared_ptr<const std::vector<CsrEntry>>;

  std::uint64_t epoch() const { return epoch_; }

  /// Vertices added on top of the root, per type. Added vertices keep
  /// absolute LocalIds (root count + position), so one id space spans
  /// base and overlay.
  std::size_t NumAddedVertices(TypeId type) const {
    return type < added_names_.size() ? added_names_[type].size() : 0;
  }
  /// Name of the added vertex with *absolute* local id `local`
  /// (callers check local >= root count first).
  const std::string& AddedName(TypeId type, LocalId local,
                               LocalId root_count) const {
    return added_names_[type][local - root_count];
  }
  /// Absolute local id of an added vertex by name, if present.
  std::optional<LocalId> FindAdded(TypeId type, std::string_view name) const;

  /// True when `v` was tombstoned. Dead vertices keep their LocalId
  /// slot and name (numbering must stay stable for every live vertex)
  /// but lose all incident edges and fail FindVertex.
  bool IsDead(VertexRef v) const {
    return !dead_.empty() && dead_.count(v) > 0;
  }
  std::size_t NumDead() const { return dead_.size(); }

  /// The replacement row for (step, row), or null when the row is
  /// untouched (read the root CSR instead).
  const std::vector<CsrEntry>* PatchedRow(const EdgeStep& step,
                                          LocalId row) const;

  /// Complete degree-sum sketch of the overlaid adjacency — equal to
  /// what Hin::ComputeSketches would produce on a flattened rebuild.
  const AdjacencySketch& Sketch(const EdgeStep& step) const {
    return step.direction == Direction::kForward
               ? forward_sketch_[step.edge_type]
               : reverse_sketch_[step.edge_type];
  }

  /// Total links counting multiplicity across the whole overlaid graph.
  std::uint64_t TotalEdges() const;

  /// Lifetime counters since the root (over all epochs up to this one).
  std::uint64_t vertices_added() const { return vertices_added_; }
  std::uint64_t vertices_deleted() const { return dead_.size(); }
  std::uint64_t edges_added() const { return edges_added_; }
  std::uint64_t edges_deleted() const { return edges_deleted_; }
  std::uint64_t rows_patched() const;

  /// Approximate heap footprint of the overlay itself (the shared root
  /// is accounted separately).
  std::size_t MemoryBytes() const;

 private:
  friend class MutableHin;

  GraphDelta() = default;

  std::uint64_t epoch_ = 0;
  // added_names_[type][i] is the name of absolute local id
  // root_count + i; added_index_[type] maps name -> absolute local id.
  std::vector<std::vector<std::string>> added_names_;
  std::vector<std::unordered_map<std::string, LocalId>> added_index_;
  std::unordered_set<VertexRef, VertexRefHash> dead_;
  // patched_[direction][edge_type]: row -> replacement row.
  std::vector<std::unordered_map<LocalId, RowPtr>> patched_forward_;
  std::vector<std::unordered_map<LocalId, RowPtr>> patched_reverse_;
  std::vector<AdjacencySketch> forward_sketch_;
  std::vector<AdjacencySketch> reverse_sketch_;
  std::uint64_t vertices_added_ = 0;
  std::uint64_t edges_added_ = 0;
  std::uint64_t edges_deleted_ = 0;
};

/// A pinned snapshot handle: the overlay (or root) Hin plus its epoch.
/// `hin` is the only thing a query needs to thread through the read
/// path — the Hin itself carries base pointer and delta — but carrying
/// the epoch explicitly keeps index-maintenance call sites honest about
/// *which* epoch they are patching toward.
struct HinSnapshot {
  HinPtr hin;
  std::uint64_t epoch = 0;
};

/// What one Commit() changed: the inputs to index delta maintenance and
/// keyed cache invalidation. Touched row lists are sorted and unique.
struct MutationSummary {
  std::uint64_t epoch = 0;
  /// touched_forward[e] / touched_reverse[e]: rows of edge type `e`'s
  /// forward / reverse adjacency whose contents this commit changed
  /// (including rows emptied by a tombstone).
  std::vector<std::vector<LocalId>> touched_forward;
  std::vector<std::vector<LocalId>> touched_reverse;
  /// Vertices this commit added (absolute ids).
  std::vector<VertexRef> added_vertices;
  std::size_t edges_added = 0;
  std::size_t edges_deleted = 0;
  std::size_t vertices_deleted = 0;

  const std::vector<LocalId>& Touched(const EdgeStep& step) const {
    return step.direction == Direction::kForward
               ? touched_forward[step.edge_type]
               : touched_reverse[step.edge_type];
  }

  bool empty() const {
    return added_vertices.empty() && edges_added == 0 && edges_deleted == 0 &&
           vertices_deleted == 0;
  }
};

struct CommitResult {
  HinSnapshot snapshot;
  MutationSummary summary;
};

/// The thread-safe mutation manager over one root graph: stage
/// AddVertex / AddEdge / DeleteEdge / DeleteVertex calls, then Commit()
/// to publish them all as one new epoch. Staging validates eagerly (a
/// bad op is rejected and never staged; the batch's other ops are
/// unaffected). Snapshot() hands out the latest published epoch;
/// published snapshots are immutable forever.
///
/// Concurrency: staging/commit/snapshot are serialized on one
/// capability-annotated mutex. Commit only builds *new* immutable state
/// — it never writes into a published Hin or GraphDelta — so readers of
/// any snapshot need no lock at all. Index maintenance (PmIndex /
/// SpmIndex ApplyDelta) is NOT handled here and is only safe with no
/// concurrent index readers; the server serializes it through the
/// dispatcher between query batches.
class MutableHin {
 public:
  /// `root` must be a root graph (no overlay). Aborts otherwise.
  explicit MutableHin(HinPtr root);

  MutableHin(const MutableHin&) = delete;
  MutableHin& operator=(const MutableHin&) = delete;

  /// Latest published snapshot (epoch 0 = the root itself).
  HinSnapshot Snapshot() const NETOUT_EXCLUDES(mu_);

  /// Stages a new vertex; visible to queries only after Commit().
  /// Idempotent per (type, name) against already-committed and staged
  /// state — re-adding a live vertex returns its existing ref. Re-using
  /// a tombstoned vertex's name is an error (its id slot is retired).
  Result<VertexRef> AddVertex(std::string_view type_name,
                              std::string_view name) NETOUT_EXCLUDES(mu_);

  /// Stages `count` parallel links src -> dst of the named edge type.
  /// Endpoints are resolved by name against committed + staged state;
  /// with `create_vertices` they are auto-added when absent (the
  /// streaming-ingest convenience the server's add_edge verb uses).
  Status AddEdge(std::string_view edge_type_name, std::string_view src_name,
                 std::string_view dst_name, std::uint32_t count = 1,
                 bool create_vertices = false) NETOUT_EXCLUDES(mu_);

  /// Stages the removal of *all* parallel links src -> dst of the named
  /// edge type. kNotFound when no such link exists.
  Status DeleteEdge(std::string_view edge_type_name,
                    std::string_view src_name,
                    std::string_view dst_name) NETOUT_EXCLUDES(mu_);

  /// Stages a vertex tombstone: all incident edges are removed and the
  /// vertex stops resolving via FindVertex. Its LocalId slot (and name)
  /// is retired, keeping every other vertex's numbering stable.
  Status DeleteVertex(std::string_view type_name,
                      std::string_view name) NETOUT_EXCLUDES(mu_);

  /// Publishes every staged mutation as one new epoch and returns the
  /// new snapshot plus the change summary. With nothing staged, returns
  /// the current snapshot and an empty summary (epoch unchanged).
  Result<CommitResult> Commit() NETOUT_EXCLUDES(mu_);

  /// Number of staged-but-uncommitted operations.
  std::size_t PendingOps() const NETOUT_EXCLUDES(mu_);

 private:
  struct StagedEdgeOp {
    bool is_delete = false;
    EdgeTypeId edge_type = kInvalidEdgeTypeId;
    LocalId src = kInvalidLocalId;
    LocalId dst = kInvalidLocalId;
    std::uint32_t count = 0;
  };

  /// Resolves (type, name) against committed + staged state. Returns
  /// nullopt when absent; `dead` is set when the vertex is tombstoned
  /// (committed or staged).
  std::optional<LocalId> ResolveLocked(TypeId type, std::string_view name,
                                       bool* dead) const
      NETOUT_REQUIRES(mu_);
  /// Resolves a live edge endpoint, optionally auto-creating it.
  /// Errors: kFailedPrecondition for tombstoned vertices, kNotFound for
  /// absent ones when `create` is false.
  Result<LocalId> ResolveEndpointLocked(TypeId type, std::string_view name,
                                        bool create) NETOUT_REQUIRES(mu_);
  Result<VertexRef> AddVertexLocked(TypeId type, std::string_view name)
      NETOUT_REQUIRES(mu_);
  std::size_t NumVerticesLocked(TypeId type) const NETOUT_REQUIRES(mu_);

  /// Current (pre-commit) contents of a row: staged-aware readers are
  /// NOT provided — staging only records ops; Commit() folds them onto
  /// the latest published snapshot.
  mutable Mutex mu_;
  HinPtr root_;
  HinPtr snapshot_ NETOUT_GUARDED_BY(mu_);  // latest published epoch
  std::uint64_t epoch_ NETOUT_GUARDED_BY(mu_) = 0;
  std::shared_ptr<const GraphDelta> delta_ NETOUT_GUARDED_BY(mu_);

  // Staged, uncommitted state.
  std::vector<std::vector<std::string>> staged_names_ NETOUT_GUARDED_BY(mu_);
  std::vector<std::unordered_map<std::string, LocalId>> staged_index_
      NETOUT_GUARDED_BY(mu_);
  std::unordered_set<VertexRef, VertexRefHash> staged_dead_
      NETOUT_GUARDED_BY(mu_);
  std::vector<VertexRef> staged_tombstones_ NETOUT_GUARDED_BY(mu_);
  std::vector<StagedEdgeOp> staged_edges_ NETOUT_GUARDED_BY(mu_);
};

/// Materializes an overlay Hin into a fresh root Hin (same schema, same
/// vertex numbering including retired tombstone slots, patched rows
/// folded into plain CSR arrays). Used to persist a mutated graph with
/// SaveHinBinary and as delta compaction when an overlay grows large.
/// A root input is returned unchanged.
Result<HinPtr> FlattenHin(const HinPtr& hin);

}  // namespace netout

#endif  // NETOUT_GRAPH_DELTA_H_
