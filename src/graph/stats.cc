#include "graph/stats.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"

namespace netout {

GraphStats ComputeGraphStats(const Hin& hin) {
  GraphStats stats;
  const Schema& schema = hin.schema();
  for (TypeId t = 0; t < schema.num_vertex_types(); ++t) {
    stats.vertex_counts.emplace_back(schema.VertexTypeName(t),
                                     hin.NumVertices(t));
    stats.total_vertices += hin.NumVertices(t);
  }
  for (EdgeTypeId e = 0; e < schema.num_edge_types(); ++e) {
    const EdgeTypeInfo& info = schema.edge_type(e);
    const EdgeStep step{e, Direction::kForward};
    const AdjacencySketch& sketch = hin.StepSketch(step);
    DegreeStats d;
    d.label = info.name + " (" + schema.VertexTypeName(info.src) + "->" +
              schema.VertexTypeName(info.dst) + ")";
    d.rows = sketch.rows;
    d.edges = sketch.multiplicity;
    for (LocalId row = 0; row < d.rows; ++row) {
      std::uint64_t degree = 0;
      for (const CsrEntry& entry : hin.StepRow(step, row)) {
        degree += entry.count;
      }
      if (degree == 0) ++d.isolated;
      d.max_degree = std::max(d.max_degree, degree);
    }
    d.mean_degree =
        d.rows == 0 ? 0.0
                    : static_cast<double>(d.edges) / static_cast<double>(d.rows);
    stats.degree_stats.push_back(std::move(d));
    stats.total_edges += sketch.multiplicity;
  }
  stats.memory_bytes = hin.MemoryBytes();
  return stats;
}

std::string GraphStats::ToString() const {
  std::ostringstream out;
  out << "vertices: " << total_vertices << ", edges: " << total_edges
      << ", memory: " << HumanBytes(memory_bytes) << "\n";
  for (const auto& [name, count] : vertex_counts) {
    out << "  type " << name << ": " << count << "\n";
  }
  for (const DegreeStats& d : degree_stats) {
    out << "  edge " << d.label << ": " << d.edges
        << " links, mean degree " << FormatDouble(d.mean_degree, 2)
        << ", max degree " << d.max_degree << ", isolated " << d.isolated
        << "\n";
  }
  return out.str();
}

}  // namespace netout
