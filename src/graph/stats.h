#ifndef NETOUT_GRAPH_STATS_H_
#define NETOUT_GRAPH_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/hin.h"

namespace netout {

/// Degree summary of one (edge type, direction) adjacency.
struct DegreeStats {
  std::string label;        // e.g. "writes (author->paper)"
  std::uint64_t edges = 0;  // total multiplicity
  std::size_t rows = 0;
  std::size_t isolated = 0;  // rows with no neighbors
  std::uint64_t max_degree = 0;
  double mean_degree = 0.0;
};

/// Aggregate statistics of a Hin, used by examples/tools and by the
/// benchmark harness to print workload characteristics.
struct GraphStats {
  std::vector<std::pair<std::string, std::size_t>> vertex_counts;
  std::vector<DegreeStats> degree_stats;  // forward direction per edge type
  std::size_t total_vertices = 0;
  std::uint64_t total_edges = 0;
  std::size_t memory_bytes = 0;

  /// Multi-line human-readable report.
  std::string ToString() const;
};

GraphStats ComputeGraphStats(const Hin& hin);

}  // namespace netout

#endif  // NETOUT_GRAPH_STATS_H_
