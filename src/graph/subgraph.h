#ifndef NETOUT_GRAPH_SUBGRAPH_H_
#define NETOUT_GRAPH_SUBGRAPH_H_

#include <span>
#include <vector>

#include "common/result.h"
#include "graph/hin.h"

namespace netout {

/// The sub-network induced by `vertices`: the same schema, the selected
/// vertices (names preserved, type-local ids renumbered densely), and
/// every link whose *both* endpoints are selected (multiplicities
/// preserved). Duplicate selections are ignored.
///
/// Typical use: carve out the neighborhood an analyst is exploring (the
/// candidate set plus its 1-2 hop surroundings) into a small network
/// that can be saved, shared, or queried in isolation.
Result<HinPtr> InducedSubgraph(const Hin& hin,
                               std::span<const VertexRef> vertices);

/// Convenience: the induced sub-network of everything reachable from
/// `seed` within `hops` edge traversals (any edge type, both
/// orientations), including `seed` itself.
Result<HinPtr> NeighborhoodSubgraph(const Hin& hin, VertexRef seed,
                                    std::size_t hops);

}  // namespace netout

#endif  // NETOUT_GRAPH_SUBGRAPH_H_
