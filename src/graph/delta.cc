#include "graph/delta.h"

#include <algorithm>
#include <span>
#include <tuple>
#include <utility>

#include "common/logging.h"

namespace netout {

namespace {

std::uint64_t RowMultiplicity(std::span<const CsrEntry> row) {
  std::uint64_t total = 0;
  for (const CsrEntry& entry : row) total += entry.count;
  return total;
}

/// Inserts (or tops up) `neighbor` in a sorted coalesced row — the same
/// merge Csr::FromEdges performs, one entry at a time.
void InsertEntry(std::vector<CsrEntry>* row, LocalId neighbor,
                 std::uint32_t count) {
  auto it = std::lower_bound(
      row->begin(), row->end(), neighbor,
      [](const CsrEntry& e, LocalId n) { return e.neighbor < n; });
  if (it != row->end() && it->neighbor == neighbor) {
    it->count += count;
  } else {
    row->insert(it, CsrEntry{neighbor, count});
  }
}

/// Removes `neighbor` (all parallel links) from a sorted row; returns
/// the removed multiplicity (0 when absent).
std::uint32_t RemoveEntry(std::vector<CsrEntry>* row, LocalId neighbor) {
  auto it = std::lower_bound(
      row->begin(), row->end(), neighbor,
      [](const CsrEntry& e, LocalId n) { return e.neighbor < n; });
  if (it == row->end() || it->neighbor != neighbor) return 0;
  const std::uint32_t removed = it->count;
  row->erase(it);
  return removed;
}

}  // namespace

std::optional<LocalId> GraphDelta::FindAdded(TypeId type,
                                             std::string_view name) const {
  if (type >= added_index_.size()) return std::nullopt;
  auto it = added_index_[type].find(std::string(name));
  if (it == added_index_[type].end()) return std::nullopt;
  return it->second;
}

const std::vector<CsrEntry>* GraphDelta::PatchedRow(const EdgeStep& step,
                                                    LocalId row) const {
  const auto& maps = step.direction == Direction::kForward ? patched_forward_
                                                           : patched_reverse_;
  const auto& per_edge = maps[step.edge_type];
  auto it = per_edge.find(row);
  return it == per_edge.end() ? nullptr : it->second.get();
}

std::uint64_t GraphDelta::TotalEdges() const {
  // Forward sketches are maintained exactly, so their multiplicity sums
  // are the graph's edge count (each conceptual edge counted once).
  std::uint64_t total = 0;
  for (const AdjacencySketch& sketch : forward_sketch_) {
    total += sketch.multiplicity;
  }
  return total;
}

std::uint64_t GraphDelta::rows_patched() const {
  std::uint64_t total = 0;
  for (const auto& per_edge : patched_forward_) total += per_edge.size();
  for (const auto& per_edge : patched_reverse_) total += per_edge.size();
  return total;
}

std::size_t GraphDelta::MemoryBytes() const {
  std::size_t bytes = sizeof(GraphDelta);
  for (const auto& per_type : added_names_) {
    for (const std::string& name : per_type) {
      bytes += name.capacity() + sizeof(std::string);
    }
  }
  for (const auto& index : added_index_) {
    bytes += index.size() * (sizeof(void*) * 4 + sizeof(LocalId));
  }
  bytes += dead_.size() * (sizeof(void*) * 4 + sizeof(VertexRef));
  const auto row_map_bytes =
      [](const std::vector<std::unordered_map<LocalId, RowPtr>>& maps) {
        std::size_t b = 0;
        for (const auto& per_edge : maps) {
          b += per_edge.size() *
               (sizeof(void*) * 4 + sizeof(LocalId) + sizeof(RowPtr));
          for (const auto& [row, ptr] : per_edge) {
            // Rows shared with prior epochs are charged to each delta
            // that references them; this is an upper-bound estimate.
            b += sizeof(std::vector<CsrEntry>) +
                 ptr->capacity() * sizeof(CsrEntry);
          }
        }
        return b;
      };
  bytes += row_map_bytes(patched_forward_);
  bytes += row_map_bytes(patched_reverse_);
  bytes += (forward_sketch_.capacity() + reverse_sketch_.capacity()) *
           sizeof(AdjacencySketch);
  return bytes;
}

MutableHin::MutableHin(HinPtr root) : root_(std::move(root)) {
  NETOUT_CHECK(root_ != nullptr) << "MutableHin requires a graph";
  NETOUT_CHECK(!root_->has_overlay())
      << "MutableHin wraps a root graph; flatten the overlay first";
  snapshot_ = root_;
  const std::size_t num_types = root_->schema().num_vertex_types();
  staged_names_.resize(num_types);
  staged_index_.resize(num_types);
}

HinSnapshot MutableHin::Snapshot() const {
  MutexLock lock(mu_);
  return HinSnapshot{snapshot_, epoch_};
}

std::size_t MutableHin::PendingOps() const {
  MutexLock lock(mu_);
  std::size_t ops = staged_edges_.size() + staged_tombstones_.size();
  for (const auto& names : staged_names_) ops += names.size();
  return ops;
}

std::size_t MutableHin::NumVerticesLocked(TypeId type) const {
  return snapshot_->NumVertices(type) + staged_names_[type].size();
}

std::optional<LocalId> MutableHin::ResolveLocked(TypeId type,
                                                 std::string_view name,
                                                 bool* dead) const {
  *dead = false;
  LocalId local = kInvalidLocalId;
  auto it = root_->name_index_[type].find(std::string(name));
  if (it != root_->name_index_[type].end()) {
    local = it->second;
  } else if (delta_) {
    if (auto added = delta_->FindAdded(type, name); added.has_value()) {
      local = *added;
    }
  }
  if (local == kInvalidLocalId) {
    auto staged = staged_index_[type].find(std::string(name));
    if (staged == staged_index_[type].end()) return std::nullopt;
    local = staged->second;
  }
  const VertexRef ref{type, local};
  if ((delta_ && delta_->IsDead(ref)) || staged_dead_.count(ref) > 0) {
    *dead = true;
  }
  return local;
}

Result<VertexRef> MutableHin::AddVertexLocked(TypeId type,
                                              std::string_view name) {
  bool dead = false;
  if (auto existing = ResolveLocked(type, name, &dead); existing.has_value()) {
    if (dead) {
      return Status::FailedPrecondition(
          "vertex '" + std::string(name) + "' of type '" +
          root_->schema().VertexTypeName(type) +
          "' was deleted; tombstoned names are retired");
    }
    return VertexRef{type, *existing};  // idempotent re-add
  }
  const auto local = static_cast<LocalId>(NumVerticesLocked(type));
  staged_index_[type].emplace(std::string(name), local);
  staged_names_[type].push_back(std::string(name));
  return VertexRef{type, local};
}

Result<LocalId> MutableHin::ResolveEndpointLocked(TypeId type,
                                                  std::string_view name,
                                                  bool create) {
  bool dead = false;
  if (auto local = ResolveLocked(type, name, &dead); local.has_value()) {
    if (dead) {
      return Status::FailedPrecondition(
          "vertex '" + std::string(name) + "' of type '" +
          root_->schema().VertexTypeName(type) + "' is deleted");
    }
    return *local;
  }
  if (!create) {
    return Status::NotFound("no vertex named '" + std::string(name) +
                            "' of type '" +
                            root_->schema().VertexTypeName(type) + "'");
  }
  NETOUT_ASSIGN_OR_RETURN(VertexRef ref, AddVertexLocked(type, name));
  return ref.local;
}

Result<VertexRef> MutableHin::AddVertex(std::string_view type_name,
                                        std::string_view name) {
  if (name.empty()) {
    return Status::InvalidArgument("vertex name must be non-empty");
  }
  NETOUT_ASSIGN_OR_RETURN(TypeId type,
                          root_->schema().FindVertexType(type_name));
  MutexLock lock(mu_);
  return AddVertexLocked(type, name);
}

Status MutableHin::AddEdge(std::string_view edge_type_name,
                           std::string_view src_name,
                           std::string_view dst_name, std::uint32_t count,
                           bool create_vertices) {
  if (count == 0) {
    return Status::InvalidArgument("edge count must be positive");
  }
  NETOUT_ASSIGN_OR_RETURN(EdgeTypeId edge,
                          root_->schema().FindEdgeType(edge_type_name));
  const EdgeTypeInfo& info = root_->schema().edge_type(edge);
  MutexLock lock(mu_);
  NETOUT_ASSIGN_OR_RETURN(
      LocalId src, ResolveEndpointLocked(info.src, src_name, create_vertices));
  NETOUT_ASSIGN_OR_RETURN(
      LocalId dst, ResolveEndpointLocked(info.dst, dst_name, create_vertices));
  staged_edges_.push_back(StagedEdgeOp{false, edge, src, dst, count});
  return Status::OK();
}

Status MutableHin::DeleteEdge(std::string_view edge_type_name,
                              std::string_view src_name,
                              std::string_view dst_name) {
  NETOUT_ASSIGN_OR_RETURN(EdgeTypeId edge,
                          root_->schema().FindEdgeType(edge_type_name));
  const EdgeTypeInfo& info = root_->schema().edge_type(edge);
  MutexLock lock(mu_);
  NETOUT_ASSIGN_OR_RETURN(LocalId src,
                          ResolveEndpointLocked(info.src, src_name, false));
  NETOUT_ASSIGN_OR_RETURN(LocalId dst,
                          ResolveEndpointLocked(info.dst, dst_name, false));
  // The link must exist in the committed-plus-staged view.
  bool present = false;
  const std::span<const CsrEntry> row =
      snapshot_->StepRow(EdgeStep{edge, Direction::kForward}, src);
  auto it = std::lower_bound(
      row.begin(), row.end(), dst,
      [](const CsrEntry& e, LocalId n) { return e.neighbor < n; });
  if (it != row.end() && it->neighbor == dst) present = true;
  for (const StagedEdgeOp& op : staged_edges_) {
    if (op.edge_type == edge && op.src == src && op.dst == dst) {
      present = !op.is_delete;
    }
  }
  if (!present) {
    return Status::NotFound("no '" + std::string(edge_type_name) +
                            "' link from '" + std::string(src_name) +
                            "' to '" + std::string(dst_name) + "'");
  }
  staged_edges_.push_back(StagedEdgeOp{true, edge, src, dst, 0});
  return Status::OK();
}

Status MutableHin::DeleteVertex(std::string_view type_name,
                                std::string_view name) {
  NETOUT_ASSIGN_OR_RETURN(TypeId type,
                          root_->schema().FindVertexType(type_name));
  MutexLock lock(mu_);
  bool dead = false;
  auto local = ResolveLocked(type, name, &dead);
  if (!local.has_value() || dead) {
    return Status::NotFound("no vertex named '" + std::string(name) +
                            "' of type '" +
                            root_->schema().VertexTypeName(type) + "'");
  }
  const VertexRef ref{type, *local};
  staged_dead_.insert(ref);
  staged_tombstones_.push_back(ref);
  return Status::OK();
}

Result<CommitResult> MutableHin::Commit() {
  MutexLock lock(mu_);
  const Schema& schema = root_->schema();
  const std::size_t num_types = schema.num_vertex_types();
  const std::size_t num_edges = schema.num_edge_types();

  MutationSummary summary;
  summary.epoch = epoch_;
  summary.touched_forward.resize(num_edges);
  summary.touched_reverse.resize(num_edges);

  const bool nothing_staged =
      staged_edges_.empty() && staged_tombstones_.empty() &&
      std::all_of(staged_names_.begin(), staged_names_.end(),
                  [](const auto& names) { return names.empty(); });
  if (nothing_staged) {
    return CommitResult{HinSnapshot{snapshot_, epoch_}, std::move(summary)};
  }

  std::shared_ptr<GraphDelta> next(new GraphDelta());
  if (delta_) {
    // Copy the prior epoch's maps; the replacement rows themselves are
    // shared_ptrs, so this shares row storage across epochs.
    *next = *delta_;
  } else {
    next->added_names_.resize(num_types);
    next->added_index_.resize(num_types);
    next->patched_forward_.resize(num_edges);
    next->patched_reverse_.resize(num_edges);
    next->forward_sketch_ = root_->forward_sketch_;
    next->reverse_sketch_ = root_->reverse_sketch_;
  }
  next->epoch_ = epoch_ + 1;
  summary.epoch = next->epoch_;

  // Reads a row as modified *so far in this commit* (staged ops apply
  // sequentially), falling back to the root CSR.
  const auto row_of = [&](const EdgeStep& step,
                          LocalId row) -> std::vector<CsrEntry> {
    const auto& maps = step.direction == Direction::kForward
                           ? next->patched_forward_
                           : next->patched_reverse_;
    auto it = maps[step.edge_type].find(row);
    if (it != maps[step.edge_type].end()) return *it->second;
    // Root rows go through StepRow (not the CSR arrays directly) so a
    // mutable overlay works over sharded roots too.
    const std::span<const CsrEntry> span = root_->StepRow(step, row);
    return std::vector<CsrEntry>(span.begin(), span.end());
  };

  // A shrink of a max-degree row invalidates max_row_entries; the exact
  // value is recomputed in one pass per flagged (edge, direction) below.
  std::vector<char> rescan_forward(num_edges, 0);
  std::vector<char> rescan_reverse(num_edges, 0);

  const auto set_row = [&](const EdgeStep& step, LocalId row,
                           std::vector<CsrEntry> contents) {
    AdjacencySketch& sketch = step.direction == Direction::kForward
                                  ? next->forward_sketch_[step.edge_type]
                                  : next->reverse_sketch_[step.edge_type];
    const std::vector<CsrEntry> old = row_of(step, row);
    sketch.entries += contents.size();
    sketch.entries -= old.size();
    sketch.multiplicity += RowMultiplicity(contents);
    sketch.multiplicity -= RowMultiplicity(old);
    if (contents.size() > sketch.max_row_entries) {
      sketch.max_row_entries = contents.size();
    } else if (contents.size() < old.size() &&
               old.size() == sketch.max_row_entries) {
      (step.direction == Direction::kForward
           ? rescan_forward
           : rescan_reverse)[step.edge_type] = 1;
    }
    auto& maps = step.direction == Direction::kForward
                     ? next->patched_forward_
                     : next->patched_reverse_;
    maps[step.edge_type][row] =
        std::make_shared<const std::vector<CsrEntry>>(std::move(contents));
    auto& touched = step.direction == Direction::kForward
                        ? summary.touched_forward
                        : summary.touched_reverse;
    touched[step.edge_type].push_back(row);
  };

  // 1. Vertex additions, in staging order per type: the absolute ids
  // assigned here reproduce the ids AddVertexLocked promised.
  for (std::size_t t = 0; t < num_types; ++t) {
    const auto type = static_cast<TypeId>(t);
    for (std::string& name : staged_names_[t]) {
      const auto local = static_cast<LocalId>(root_->names_[t].size() +
                                              next->added_names_[t].size());
      next->added_index_[t].emplace(name, local);
      next->added_names_[t].push_back(std::move(name));
      next->vertices_added_ += 1;
      summary.added_vertices.push_back(VertexRef{type, local});
      for (std::size_t e = 0; e < num_edges; ++e) {
        const EdgeTypeInfo& info = schema.edge_type(static_cast<EdgeTypeId>(e));
        if (info.src == type) next->forward_sketch_[e].rows += 1;
        if (info.dst == type) next->reverse_sketch_[e].rows += 1;
      }
    }
  }

  // 2. Edge insertions/removals, in staging order. Both stored
  // directions are patched so every StepRow stays exact.
  for (const StagedEdgeOp& op : staged_edges_) {
    const EdgeStep fwd{op.edge_type, Direction::kForward};
    const EdgeStep rev{op.edge_type, Direction::kReverse};
    std::vector<CsrEntry> src_row = row_of(fwd, op.src);
    std::vector<CsrEntry> dst_row = row_of(rev, op.dst);
    if (op.is_delete) {
      const std::uint32_t removed = RemoveEntry(&src_row, op.dst);
      RemoveEntry(&dst_row, op.src);
      next->edges_deleted_ += removed;
      summary.edges_deleted += removed;
    } else {
      InsertEntry(&src_row, op.dst, op.count);
      InsertEntry(&dst_row, op.src, op.count);
      next->edges_added_ += op.count;
      summary.edges_added += op.count;
    }
    set_row(fwd, op.src, std::move(src_row));
    set_row(rev, op.dst, std::move(dst_row));
  }

  // 3. Tombstones, last: clear the vertex's own rows and excise it from
  // every incident neighbor's opposite-direction row. Each underlying
  // edge is counted once (its surviving occurrence at excision time).
  for (const VertexRef v : staged_tombstones_) {
    if (next->dead_.count(v) > 0) continue;
    for (std::size_t e = 0; e < num_edges; ++e) {
      const auto edge = static_cast<EdgeTypeId>(e);
      const EdgeTypeInfo& info = schema.edge_type(edge);
      const EdgeStep fwd{edge, Direction::kForward};
      const EdgeStep rev{edge, Direction::kReverse};
      if (info.src == v.type) {
        const std::vector<CsrEntry> row = row_of(fwd, v.local);
        for (const CsrEntry& entry : row) {
          std::vector<CsrEntry> neighbor_row = row_of(rev, entry.neighbor);
          RemoveEntry(&neighbor_row, v.local);
          set_row(rev, entry.neighbor, std::move(neighbor_row));
          next->edges_deleted_ += entry.count;
          summary.edges_deleted += entry.count;
        }
        if (!row.empty()) set_row(fwd, v.local, {});
      }
      if (info.dst == v.type) {
        const std::vector<CsrEntry> row = row_of(rev, v.local);
        for (const CsrEntry& entry : row) {
          std::vector<CsrEntry> neighbor_row = row_of(fwd, entry.neighbor);
          RemoveEntry(&neighbor_row, v.local);
          set_row(fwd, entry.neighbor, std::move(neighbor_row));
          next->edges_deleted_ += entry.count;
          summary.edges_deleted += entry.count;
        }
        if (!row.empty()) set_row(rev, v.local, {});
      }
    }
    next->dead_.insert(v);
    summary.vertices_deleted += 1;
  }

  // 4. Exact max_row_entries for any (edge, direction) whose maximum
  // may have shrunk: one degree pass over patched + root rows.
  for (std::size_t e = 0; e < num_edges; ++e) {
    for (const Direction dir : {Direction::kForward, Direction::kReverse}) {
      const bool flagged = dir == Direction::kForward ? rescan_forward[e] != 0
                                                      : rescan_reverse[e] != 0;
      if (!flagged) continue;
      AdjacencySketch& sketch = dir == Direction::kForward
                                    ? next->forward_sketch_[e]
                                    : next->reverse_sketch_[e];
      const auto& patched = dir == Direction::kForward
                                ? next->patched_forward_[e]
                                : next->patched_reverse_[e];
      const EdgeStep step{static_cast<EdgeTypeId>(e), dir};
      std::uint64_t max_entries = 0;
      for (LocalId row = 0; row < sketch.rows; ++row) {
        auto it = patched.find(row);
        const std::size_t degree = it != patched.end()
                                       ? it->second->size()
                                       : root_->StepRow(step, row).size();
        max_entries = std::max<std::uint64_t>(max_entries, degree);
      }
      sketch.max_row_entries = max_entries;
    }
  }

  for (auto* touched : {&summary.touched_forward, &summary.touched_reverse}) {
    for (std::vector<LocalId>& rows : *touched) {
      std::sort(rows.begin(), rows.end());
      rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    }
  }

  std::shared_ptr<Hin> published(new Hin());
  published->base_ = root_;
  published->overlay_ = next;
  snapshot_ = published;
  epoch_ = next->epoch_;
  delta_ = next;

  for (auto& names : staged_names_) names.clear();
  for (auto& index : staged_index_) index.clear();
  staged_dead_.clear();
  staged_tombstones_.clear();
  staged_edges_.clear();

  return CommitResult{HinSnapshot{snapshot_, epoch_}, std::move(summary)};
}

Result<HinPtr> FlattenHin(const HinPtr& hin) {
  if (hin == nullptr) return Status::InvalidArgument("null graph");
  if (!hin->has_overlay()) return hin;
  const Schema& schema = hin->schema();
  std::shared_ptr<Hin> flat(new Hin());
  flat->schema_ = schema;
  const std::size_t num_types = schema.num_vertex_types();
  flat->names_.resize(num_types);
  flat->name_index_.resize(num_types);
  for (std::size_t t = 0; t < num_types; ++t) {
    const auto type = static_cast<TypeId>(t);
    const std::size_t count = hin->NumVertices(type);
    flat->names_[t].reserve(count);
    for (LocalId v = 0; v < count; ++v) {
      // Tombstoned vertices flatten to plain isolated vertices (name
      // and id slot retained), keeping every live id stable.
      flat->names_[t].push_back(hin->VertexName(VertexRef{type, v}));
      flat->name_index_[t].emplace(flat->names_[t].back(), v);
    }
  }
  const std::size_t num_edges = schema.num_edge_types();
  flat->forward_.reserve(num_edges);
  flat->reverse_.reserve(num_edges);
  for (std::size_t e = 0; e < num_edges; ++e) {
    const auto edge = static_cast<EdgeTypeId>(e);
    for (const Direction dir : {Direction::kForward, Direction::kReverse}) {
      const EdgeStep step{edge, dir};
      const std::size_t rows = hin->NumVertices(schema.StepSource(step));
      std::vector<std::uint64_t> offsets(1, 0);
      std::vector<CsrEntry> entries;
      for (LocalId row = 0; row < rows; ++row) {
        const std::span<const CsrEntry> span = hin->StepRow(step, row);
        entries.insert(entries.end(), span.begin(), span.end());
        offsets.push_back(entries.size());
      }
      Csr csr = Csr::FromRaw(std::move(offsets), std::move(entries));
      (dir == Direction::kForward ? flat->forward_ : flat->reverse_)
          .push_back(std::move(csr));
    }
  }
  flat->ComputeSketches();
  return HinPtr(flat);
}

}  // namespace netout
