#ifndef NETOUT_COMMON_CANCELLATION_H_
#define NETOUT_COMMON_CANCELLATION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace netout {

/// Why a cooperative execution stopped before finishing.
enum class StopReason : std::uint8_t {
  kNone = 0,       // still running / ran to completion
  kDeadline = 1,   // the wall-clock deadline passed
  kCancelled = 2,  // RequestCancel() (directly or via a chained token)
  kBudget = 3,     // the materialization byte budget was exhausted
  kCallback = 4,   // a progressive callback declined to continue
};

/// Canonical lower-case name ("none", "deadline", ...). Never null.
const char* StopReasonToString(StopReason reason);

/// What the engine does when a limit trips mid-query: surface the stop
/// as an error status, or assemble a best-effort partial result marked
/// QueryResult::degraded.
enum class StopPolicy : std::uint8_t {
  kError = 0,
  kPartial = 1,
};

/// True for the three status codes a tripped CancellationToken produces
/// (kDeadlineExceeded / kCancelled / kResourceExhausted) — the statuses
/// eligible for StopPolicy::kPartial degradation, as opposed to real
/// execution errors.
bool IsStopStatus(const Status& status);

/// Maps a stop status code back to the StopReason that produced it
/// (kNone for non-stop codes). Used where only the Status survived.
StopReason StopReasonFromStatus(StatusCode code);

/// Cooperative stop signal for one query execution: an optional
/// wall-clock deadline, an optional materialization byte budget, an
/// external cancel chain, and explicit cancellation. The first trigger
/// wins and is sticky — stop_reason() never changes once set.
///
/// The hot-path check (ShouldStop) is one relaxed atomic load when
/// nothing tripped and no deadline is armed; the clock is read only when
/// a deadline exists. Execution code polls at chunk boundaries (per
/// operator, per materialized vector, per traversal hop), never per
/// edge, so the overhead is unmeasurable and stop latency is bounded by
/// one chunk of work.
///
/// Thread-safe: any thread may poll, charge, or cancel concurrently.
/// Not copyable or movable (workers hold stable pointers to it).
///
/// Deliberately outside the capability model of common/sync.h: the
/// token is lock-free by construction (atomics only, first-trigger
/// resolved by compare-exchange), so there is no mutex for the
/// thread-safety analysis to track — async-signal-safety of
/// RequestCancel() depends on it staying that way.
class CancellationToken {
 public:
  /// A token with no limits: stops only via RequestCancel().
  CancellationToken() = default;

  /// `timeout_millis` < 0 disables the deadline (armed from *now*);
  /// `budget_bytes` == 0 disables the byte budget. `external` (borrowed,
  /// may be null, must outlive this token) chains a caller-owned cancel
  /// handle: when it stops, this token adopts its reason.
  CancellationToken(std::int64_t timeout_millis, std::size_t budget_bytes,
                    const CancellationToken* external = nullptr);

  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Requests cooperative cancellation (kCancelled, unless something
  /// else tripped first). Safe from any thread, including signal-free
  /// UI/watchdog threads.
  void RequestCancel() const { TripIfFirst(StopReason::kCancelled); }

  /// Records `bytes` of materialized data against the budget; trips
  /// kBudget when the cumulative total exceeds it. No-op without a
  /// budget (the counter still accumulates for charged_bytes()).
  void ChargeBytes(std::size_t bytes) const;

  /// True once any trigger fired. This is the poll: relaxed load first,
  /// then the external chain, then the deadline clock (only if armed).
  bool ShouldStop() const;

  /// The first trigger that fired, kNone while running.
  StopReason stop_reason() const {
    return reason_.load(std::memory_order_acquire);
  }

  /// The stop as a Status: kDeadlineExceeded / kCancelled /
  /// kResourceExhausted (callback stops map to kCancelled); OK when
  /// nothing tripped.
  Status ToStatus() const;

  /// True when a deadline or budget is armed (an external chain alone
  /// does not count — the caller knows it passed one).
  bool has_limits() const {
    return deadline_nanos_ >= 0 || budget_bytes_ > 0;
  }

  /// Cumulative bytes charged so far (diagnostic).
  std::size_t charged_bytes() const {
    return charged_bytes_.load(std::memory_order_relaxed);
  }

 private:
  /// CAS-installs `reason` if nothing tripped yet; returns true if this
  /// call won. Stickiness is what makes stop_reason() stable under
  /// concurrent triggers.
  bool TripIfFirst(StopReason reason) const;

  mutable std::atomic<StopReason> reason_{StopReason::kNone};
  mutable std::atomic<std::size_t> charged_bytes_{0};
  std::int64_t deadline_nanos_ = -1;  // steady-clock ns; -1 = no deadline
  std::size_t budget_bytes_ = 0;      // 0 = no budget
  const CancellationToken* external_ = nullptr;
};

}  // namespace netout

#endif  // NETOUT_COMMON_CANCELLATION_H_
