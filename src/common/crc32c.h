#ifndef NETOUT_COMMON_CRC32C_H_
#define NETOUT_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace netout {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) —
/// the checksum of the sharded graph segment files (graph/segment.h).
/// Chosen over the snapshot container's FNV-1a because segment payloads
/// are mmapped and read piecemeal: CRC32C is the storage-industry
/// convention for exactly that case (iSCSI, ext4, leveldb), with far
/// better burst-error detection than a multiplicative hash.
///
/// Software slice-by-8 implementation; one pass over 1 MB segments at
/// load time is far off every query hot path, so hardware dispatch is
/// not worth a second code path.

/// Extends a running CRC-32C with `size` bytes. Start from 0.
std::uint32_t Crc32cExtend(std::uint32_t crc, const void* data,
                           std::size_t size);

inline std::uint32_t Crc32c(const void* data, std::size_t size) {
  return Crc32cExtend(0, data, size);
}

inline std::uint32_t Crc32c(std::string_view bytes) {
  return Crc32cExtend(0, bytes.data(), bytes.size());
}

}  // namespace netout

#endif  // NETOUT_COMMON_CRC32C_H_
