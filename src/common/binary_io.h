#ifndef NETOUT_COMMON_BINARY_IO_H_
#define NETOUT_COMMON_BINARY_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace netout {

/// Little-endian append helpers over a std::string buffer. Together with
/// Cursor they implement the (trivially portable) on-disk encoding used
/// by the graph snapshot and index files.
void AppendU64(std::string* buf, std::uint64_t value);
void AppendU32(std::string* buf, std::uint32_t value);
void AppendDouble(std::string* buf, double value);
void AppendString(std::string* buf, std::string_view s);

/// Sequential reader over an encoded buffer; every read validates
/// remaining length and fails with kCorruption on truncation.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  Result<std::uint64_t> ReadU64();
  Result<std::uint32_t> ReadU32();
  Result<double> ReadDouble();
  Result<std::string> ReadString();

  bool AtEnd() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

/// POSIX fd transfer helpers shared by file snapshots and sockets.
/// read()/write() may legally transfer fewer bytes than asked (sockets,
/// pipes, signals) and may fail spuriously with EINTR; treating either
/// as corruption was a latent bug for snapshot files under signals and
/// a fatal one for socket I/O. These loop until done.

/// Reads exactly `size` bytes into `buf` unless EOF arrives first;
/// `*bytes_read` (required) receives the count actually read. Short
/// counts and EINTR are retried; only a true error returns kIoError.
Status ReadFull(int fd, void* buf, std::size_t size,
                std::size_t* bytes_read);

/// Writes all `size` bytes of `buf`, retrying short writes and EINTR.
Status WriteFull(int fd, const void* buf, std::size_t size);

/// Reads `fd` to EOF (the blocking-client receive path and the
/// file-loading backend).
Result<std::string> ReadFdToString(int fd);

/// Whole-file helpers (EINTR-safe via the loops above).
Result<std::string> ReadFileToString(std::string_view path);
Status WriteStringToFile(std::string_view path, std::string_view data);

/// Durable variant for snapshots/indexes: writes to a temporary file in
/// the target directory, fsyncs, then rename()s over `path`, so a crash
/// or signal mid-write can never leave a torn file under the final name.
Status WriteStringToFileAtomic(std::string_view path,
                               std::string_view data);

/// Wraps `payload` in the standard netout container:
///   magic(8) | u64 payload_size | payload | u64 fnv1a(payload)
/// and the matching validator that checks magic, size, and checksum.
std::string WrapWithChecksum(std::string_view magic8,
                             std::string_view payload);
Result<std::string> UnwrapChecked(std::string_view magic8,
                                  std::string_view file_data);

}  // namespace netout

#endif  // NETOUT_COMMON_BINARY_IO_H_
