#ifndef NETOUT_COMMON_BINARY_IO_H_
#define NETOUT_COMMON_BINARY_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace netout {

/// Little-endian append helpers over a std::string buffer. Together with
/// Cursor they implement the (trivially portable) on-disk encoding used
/// by the graph snapshot and index files.
void AppendU64(std::string* buf, std::uint64_t value);
void AppendU32(std::string* buf, std::uint32_t value);
void AppendDouble(std::string* buf, double value);
void AppendString(std::string* buf, std::string_view s);

/// Sequential reader over an encoded buffer; every read validates
/// remaining length and fails with kCorruption on truncation.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  Result<std::uint64_t> ReadU64();
  Result<std::uint32_t> ReadU32();
  Result<double> ReadDouble();
  Result<std::string> ReadString();

  bool AtEnd() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

/// Whole-file helpers.
Result<std::string> ReadFileToString(std::string_view path);
Status WriteStringToFile(std::string_view path, std::string_view data);

/// Wraps `payload` in the standard netout container:
///   magic(8) | u64 payload_size | payload | u64 fnv1a(payload)
/// and the matching validator that checks magic, size, and checksum.
std::string WrapWithChecksum(std::string_view magic8,
                             std::string_view payload);
Result<std::string> UnwrapChecked(std::string_view magic8,
                                  std::string_view file_data);

}  // namespace netout

#endif  // NETOUT_COMMON_BINARY_IO_H_
