#include "common/status.h"

#include "common/logging.h"

namespace netout {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kAlreadyExists:
      return "already-exists";
    case StatusCode::kOutOfRange:
      return "out-of-range";
    case StatusCode::kFailedPrecondition:
      return "failed-precondition";
    case StatusCode::kParseError:
      return "parse-error";
    case StatusCode::kIoError:
      return "io-error";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return Status();
  std::string msg(context);
  msg += ": ";
  msg += message();
  Status result;
  result.rep_ = std::make_unique<Rep>(Rep{code(), std::move(msg)});
  return result;
}

void Status::CheckOk() const {
  NETOUT_CHECK(ok()) << "Status expected OK, got: " << ToString();
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace netout
