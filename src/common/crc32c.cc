#include "common/crc32c.h"

#include <array>

namespace netout {
namespace {

// Slice-by-8 tables for the reflected Castagnoli polynomial. Table 0 is
// the classic byte-at-a-time table; table k folds a zero byte k times,
// letting the hot loop consume 8 input bytes per iteration.
struct Crc32cTables {
  std::array<std::array<std::uint32_t, 256>, 8> t{};

  constexpr Crc32cTables() {
    constexpr std::uint32_t kPoly = 0x82F63B78u;
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = t[0][i];
      for (std::size_t slice = 1; slice < 8; ++slice) {
        crc = t[0][crc & 0xFFu] ^ (crc >> 8);
        t[slice][i] = crc;
      }
    }
  }
};

constexpr Crc32cTables kTables;

}  // namespace

std::uint32_t Crc32cExtend(std::uint32_t crc, const void* data,
                           std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  // Byte-at-a-time until we can read aligned-ish 8-byte groups. The
  // slice loop reads bytes individually (no type punning), so alignment
  // only matters for speed, not correctness — skip the alignment dance.
  while (size >= 8) {
    const std::uint32_t low = crc ^ (static_cast<std::uint32_t>(p[0]) |
                                     static_cast<std::uint32_t>(p[1]) << 8 |
                                     static_cast<std::uint32_t>(p[2]) << 16 |
                                     static_cast<std::uint32_t>(p[3]) << 24);
    crc = kTables.t[7][low & 0xFFu] ^ kTables.t[6][(low >> 8) & 0xFFu] ^
          kTables.t[5][(low >> 16) & 0xFFu] ^ kTables.t[4][low >> 24] ^
          kTables.t[3][p[4]] ^ kTables.t[2][p[5]] ^ kTables.t[1][p[6]] ^
          kTables.t[0][p[7]];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = kTables.t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace netout
