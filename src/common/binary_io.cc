#include "common/binary_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "common/hash.h"
#include "common/logging.h"

namespace netout {
namespace {

std::string ErrnoMessage(std::string_view what, std::string_view path) {
  std::string msg(what);
  if (!path.empty()) {
    msg += " '";
    msg += path;
    msg += "'";
  }
  msg += ": ";
  msg += std::strerror(errno);
  return msg;
}

/// RAII fd so every error path below closes.
class UniqueFd {
 public:
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() {
    if (fd_ >= 0) ::close(fd_);
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  int get() const { return fd_; }
  /// Closes now and reports the result (close can surface write errors).
  int CloseNow() {
    const int rc = ::close(fd_);
    fd_ = -1;
    return rc;
  }

 private:
  int fd_;
};

}  // namespace

void AppendU64(std::string* buf, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    buf->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void AppendU32(std::string* buf, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    buf->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void AppendDouble(std::string* buf, double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  AppendU64(buf, bits);
}

void AppendString(std::string* buf, std::string_view s) {
  AppendU64(buf, s.size());
  buf->append(s.data(), s.size());
}

Result<std::uint64_t> Cursor::ReadU64() {
  if (pos_ + 8 > data_.size()) {
    return Status::Corruption("buffer truncated (u64)");
  }
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(data_[pos_ + i]))
             << (8 * i);
  }
  pos_ += 8;
  return value;
}

Result<std::uint32_t> Cursor::ReadU32() {
  if (pos_ + 4 > data_.size()) {
    return Status::Corruption("buffer truncated (u32)");
  }
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(data_[pos_ + i]))
             << (8 * i);
  }
  pos_ += 4;
  return value;
}

Result<double> Cursor::ReadDouble() {
  NETOUT_ASSIGN_OR_RETURN(std::uint64_t bits, ReadU64());
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

Result<std::string> Cursor::ReadString() {
  NETOUT_ASSIGN_OR_RETURN(std::uint64_t size, ReadU64());
  // `size` is untrusted input: compare against the remaining bytes
  // instead of forming `pos_ + size`, which wraps for sizes near 2^64
  // and would sail past the truncation check.
  if (size > data_.size() - pos_) {
    return Status::Corruption("buffer truncated (string)");
  }
  std::string out(data_.substr(pos_, size));
  pos_ += size;
  return out;
}

Status ReadFull(int fd, void* buf, std::size_t size,
                std::size_t* bytes_read) {
  NETOUT_CHECK(bytes_read != nullptr) << "bytes_read is required";
  char* out = static_cast<char*>(buf);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::read(fd, out + done, size - done);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) break;  // EOF
    if (errno == EINTR) continue;
    *bytes_read = done;
    return Status::IoError(ErrnoMessage("read failed", ""));
  }
  *bytes_read = done;
  return Status::OK();
}

Status WriteFull(int fd, const void* buf, std::size_t size) {
  const char* in = static_cast<const char*>(buf);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, in + done, size - done);
    if (n >= 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    return Status::IoError(ErrnoMessage("write failed", ""));
  }
  return Status::OK();
}

Result<std::string> ReadFdToString(int fd) {
  std::string out;
  char chunk[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n > 0) {
      out.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return out;  // EOF
    if (errno == EINTR) continue;
    return Status::IoError(ErrnoMessage("read failed", ""));
  }
}

Result<std::string> ReadFileToString(std::string_view path) {
  UniqueFd fd(::open(std::string(path).c_str(), O_RDONLY | O_CLOEXEC));
  if (fd.get() < 0) {
    return Status::IoError(ErrnoMessage("cannot open", path));
  }
  Result<std::string> data = ReadFdToString(fd.get());
  if (!data.ok()) {
    return data.status().WithContext("reading '" + std::string(path) +
                                     "'");
  }
  return data;
}

Status WriteStringToFile(std::string_view path, std::string_view data) {
  UniqueFd fd(::open(std::string(path).c_str(),
                     O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644));
  if (fd.get() < 0) {
    return Status::IoError(ErrnoMessage("cannot open", path));
  }
  NETOUT_RETURN_IF_ERROR(WriteFull(fd.get(), data.data(), data.size())
                             .WithContext("writing '" + std::string(path) +
                                          "'"));
  if (fd.CloseNow() != 0) {
    return Status::IoError(ErrnoMessage("close failed", path));
  }
  return Status::OK();
}

Status WriteStringToFileAtomic(std::string_view path,
                               std::string_view data) {
  // The temp file lives next to the target so rename() stays within one
  // filesystem (cross-device rename fails with EXDEV). The name must be
  // unique per call, not just per process: two threads saving the same
  // path would otherwise collide on O_EXCL.
  static std::atomic<std::uint64_t> save_serial{0};
  const std::string target(path);
  const std::string tmp =
      target + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(save_serial.fetch_add(1, std::memory_order_relaxed));
  UniqueFd fd(::open(tmp.c_str(),
                     O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644));
  if (fd.get() < 0) {
    return Status::IoError(ErrnoMessage("cannot open", tmp));
  }
  auto fail = [&](Status status) {
    ::unlink(tmp.c_str());
    return status;
  };
  Status written = WriteFull(fd.get(), data.data(), data.size());
  if (!written.ok()) {
    return fail(written.WithContext("writing '" + tmp + "'"));
  }
  if (::fsync(fd.get()) != 0) {
    return fail(Status::IoError(ErrnoMessage("fsync failed", tmp)));
  }
  if (fd.CloseNow() != 0) {
    return fail(Status::IoError(ErrnoMessage("close failed", tmp)));
  }
  if (::rename(tmp.c_str(), target.c_str()) != 0) {
    return fail(Status::IoError(ErrnoMessage("rename failed", target)));
  }
  // The rename itself is only durable once the directory entry reaches
  // disk; without this a crash can resurrect the old file. The target
  // is already in place, so failures here must not unlink anything.
  const std::size_t slash = target.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? "."
                              : (slash == 0 ? "/" : target.substr(0, slash));
  UniqueFd dir_fd(::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC));
  if (dir_fd.get() < 0) {
    return Status::IoError(ErrnoMessage("cannot open directory", dir));
  }
  if (::fsync(dir_fd.get()) != 0) {
    return Status::IoError(ErrnoMessage("fsync failed", dir));
  }
  return Status::OK();
}

std::string WrapWithChecksum(std::string_view magic8,
                             std::string_view payload) {
  NETOUT_CHECK(magic8.size() == 8) << "magic must be 8 bytes";
  std::string file;
  file.append(magic8.data(), magic8.size());
  AppendU64(&file, payload.size());
  file.append(payload.data(), payload.size());
  AppendU64(&file, Fnv1a64(payload));
  return file;
}

Result<std::string> UnwrapChecked(std::string_view magic8,
                                  std::string_view file_data) {
  NETOUT_CHECK(magic8.size() == 8) << "magic must be 8 bytes";
  if (file_data.size() < 8 + 8 + 8 ||
      file_data.substr(0, 8) != magic8) {
    return Status::Corruption("bad magic: not the expected netout file");
  }
  Cursor header(file_data.substr(8, 8));
  NETOUT_ASSIGN_OR_RETURN(std::uint64_t payload_size, header.ReadU64());
  // Untrusted size: `8 + 8 + payload_size + 8` wraps for values near
  // 2^64, so bound payload_size by the actual file size first.
  if (payload_size > file_data.size() - 24 ||
      file_data.size() != 8 + 8 + payload_size + 8) {
    return Status::Corruption("file size mismatch");
  }
  std::string_view payload = file_data.substr(16, payload_size);
  Cursor footer(file_data.substr(16 + payload_size));
  NETOUT_ASSIGN_OR_RETURN(std::uint64_t checksum, footer.ReadU64());
  if (checksum != Fnv1a64(payload)) {
    return Status::Corruption("checksum mismatch: file is corrupted");
  }
  return std::string(payload);
}

}  // namespace netout
