#include "common/binary_io.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "common/hash.h"
#include "common/logging.h"

namespace netout {

void AppendU64(std::string* buf, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    buf->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void AppendU32(std::string* buf, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    buf->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void AppendDouble(std::string* buf, double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  AppendU64(buf, bits);
}

void AppendString(std::string* buf, std::string_view s) {
  AppendU64(buf, s.size());
  buf->append(s.data(), s.size());
}

Result<std::uint64_t> Cursor::ReadU64() {
  if (pos_ + 8 > data_.size()) {
    return Status::Corruption("buffer truncated (u64)");
  }
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(data_[pos_ + i]))
             << (8 * i);
  }
  pos_ += 8;
  return value;
}

Result<std::uint32_t> Cursor::ReadU32() {
  if (pos_ + 4 > data_.size()) {
    return Status::Corruption("buffer truncated (u32)");
  }
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(data_[pos_ + i]))
             << (8 * i);
  }
  pos_ += 4;
  return value;
}

Result<double> Cursor::ReadDouble() {
  NETOUT_ASSIGN_OR_RETURN(std::uint64_t bits, ReadU64());
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

Result<std::string> Cursor::ReadString() {
  NETOUT_ASSIGN_OR_RETURN(std::uint64_t size, ReadU64());
  // `size` is untrusted input: compare against the remaining bytes
  // instead of forming `pos_ + size`, which wraps for sizes near 2^64
  // and would sail past the truncation check.
  if (size > data_.size() - pos_) {
    return Status::Corruption("buffer truncated (string)");
  }
  std::string out(data_.substr(pos_, size));
  pos_ += size;
  return out;
}

Result<std::string> ReadFileToString(std::string_view path) {
  std::ifstream in{std::string(path), std::ios::binary};
  if (!in) {
    return Status::IoError("cannot open '" + std::string(path) +
                           "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("read failed on '" + std::string(path) + "'");
  }
  return buffer.str();
}

Status WriteStringToFile(std::string_view path, std::string_view data) {
  std::ofstream out{std::string(path), std::ios::binary | std::ios::trunc};
  if (!out) {
    return Status::IoError("cannot open '" + std::string(path) +
                           "' for writing");
  }
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out) {
    return Status::IoError("write failed on '" + std::string(path) + "'");
  }
  return Status::OK();
}

std::string WrapWithChecksum(std::string_view magic8,
                             std::string_view payload) {
  NETOUT_CHECK(magic8.size() == 8) << "magic must be 8 bytes";
  std::string file;
  file.append(magic8.data(), magic8.size());
  AppendU64(&file, payload.size());
  file.append(payload.data(), payload.size());
  AppendU64(&file, Fnv1a64(payload));
  return file;
}

Result<std::string> UnwrapChecked(std::string_view magic8,
                                  std::string_view file_data) {
  NETOUT_CHECK(magic8.size() == 8) << "magic must be 8 bytes";
  if (file_data.size() < 8 + 8 + 8 ||
      file_data.substr(0, 8) != magic8) {
    return Status::Corruption("bad magic: not the expected netout file");
  }
  Cursor header(file_data.substr(8, 8));
  NETOUT_ASSIGN_OR_RETURN(std::uint64_t payload_size, header.ReadU64());
  // Untrusted size: `8 + 8 + payload_size + 8` wraps for values near
  // 2^64, so bound payload_size by the actual file size first.
  if (payload_size > file_data.size() - 24 ||
      file_data.size() != 8 + 8 + payload_size + 8) {
    return Status::Corruption("file size mismatch");
  }
  std::string_view payload = file_data.substr(16, payload_size);
  Cursor footer(file_data.substr(16 + payload_size));
  NETOUT_ASSIGN_OR_RETURN(std::uint64_t checksum, footer.ReadU64());
  if (checksum != Fnv1a64(payload)) {
    return Status::Corruption("checksum mismatch: file is corrupted");
  }
  return std::string(payload);
}

}  // namespace netout
