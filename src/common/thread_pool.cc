#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "common/cancellation.h"
#include "common/logging.h"

namespace netout {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  SubmitOwned(nullptr, std::move(task));
}

void ThreadPool::SubmitOwned(const void* owner, std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    NETOUT_CHECK(!shutting_down_) << "Submit after shutdown";
    queue_.push_back(QueuedTask{std::move(task), owner});
    ++in_flight_;
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mutex_);
  while (in_flight_ != 0) all_done_.Wait(mutex_);
}

void ThreadPool::ExecuteTask(std::function<void()> task) {
  // RAII: the in-flight count must drop even when the task throws, or
  // every later Wait() would hang on work that can never finish.
  struct InFlightGuard {
    ThreadPool* pool;
    ~InFlightGuard() {
      MutexLock lock(pool->mutex_);
      --pool->in_flight_;
      if (pool->in_flight_ == 0) pool->all_done_.NotifyAll();
    }
  } guard{this};
  try {
    task();
  } catch (...) {
    // Raw-submitted tasks have no TaskGroup to deliver the exception to;
    // dropping it here beats std::terminate tearing down the process.
    // TaskGroup wraps its tasks, so grouped exceptions never reach this.
    NETOUT_LOG(Warning)
        << "exception escaped a thread-pool task; dropped (use TaskGroup "
           "to propagate task exceptions)";
  }
}

bool ThreadPool::RunOneTask() {
  std::function<void()> task;
  {
    MutexLock lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front().fn);
    queue_.pop_front();
  }
  ExecuteTask(std::move(task));
  return true;
}

bool ThreadPool::RunOneTaskOwnedBy(const void* owner) {
  std::function<void()> task;
  {
    MutexLock lock(mutex_);
    const auto it =
        std::find_if(queue_.begin(), queue_.end(),
                     [owner](const QueuedTask& queued) {
                       return queued.owner == owner;
                     });
    if (it == queue_.end()) return false;
    task = std::move(it->fn);
    queue_.erase(it);
  }
  ExecuteTask(std::move(task));
  return true;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!shutting_down_ && queue_.empty()) work_available_.Wait(mutex_);
      if (queue_.empty()) {
        // shutting_down_ must be true here; drain completed, exit.
        return;
      }
      task = std::move(queue_.front().fn);
      queue_.pop_front();
    }
    ExecuteTask(std::move(task));
  }
}

TaskGroup::TaskGroup(ThreadPool* pool, const CancellationToken* cancel)
    : pool_(pool), cancel_(cancel) {
  NETOUT_CHECK(pool_ != nullptr);
}

TaskGroup::~TaskGroup() { WaitAllFinished(); }

void TaskGroup::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    ++pending_;
  }
  pool_->SubmitOwned(this, [this, task = std::move(task)]() mutable {
    std::exception_ptr thrown;
    // A cancelled group's queued tasks are dequeued as no-ops: the
    // completion accounting below still runs (so Wait() returns), but
    // the work is skipped. Callers observe the skip via the token.
    if (cancel_ == nullptr || !cancel_->ShouldStop()) {
      try {
        task();
      } catch (...) {
        thrown = std::current_exception();
      }
    }
    MutexLock lock(mutex_);
    if (thrown != nullptr && first_exception_ == nullptr) {
      first_exception_ = thrown;
    }
    if (--pending_ == 0) done_.NotifyAll();
  });
}

void TaskGroup::WaitAllFinished() {
  for (;;) {
    {
      MutexLock lock(mutex_);
      if (pending_ == 0) return;
    }
    // Help drain this group's own tasks instead of sleeping: a Wait()
    // from inside a pool task (nested ParallelFor) would otherwise park
    // the worker while its subtasks sit unrunnable behind it. Only own
    // tasks are eligible — running a foreign group's task here could
    // block this thread on work unrelated to what it awaits.
    if (pool_->RunOneTaskOwnedBy(this)) continue;
    // Queue empty: the group's remaining tasks are executing on other
    // threads; sleep until they land. Any task they enqueue wakes a pool
    // worker via Submit's notify, so sleeping here cannot deadlock.
    MutexLock lock(mutex_);
    while (pending_ != 0) done_.Wait(mutex_);
    return;
  }
}

void TaskGroup::Wait() {
  WaitAllFinished();
  std::exception_ptr thrown;
  {
    MutexLock lock(mutex_);
    thrown = std::exchange(first_exception_, nullptr);
  }
  if (thrown != nullptr) std::rethrow_exception(thrown);
}

void ParallelFor(ThreadPool* pool, std::size_t count,
                 const std::function<void(std::size_t)>& fn,
                 const CancellationToken* cancel) {
  if (count == 0) return;
  // Chunk the index space so tiny tasks do not thrash the queue lock.
  const std::size_t chunks = std::min(count, pool->num_threads() * 4);
  const std::size_t chunk_size = (count + chunks - 1) / chunks;
  TaskGroup group(pool, cancel);
  for (std::size_t begin = 0; begin < count; begin += chunk_size) {
    const std::size_t end = std::min(count, begin + chunk_size);
    group.Submit([begin, end, &fn, cancel] {
      for (std::size_t i = begin; i < end; ++i) {
        if (cancel != nullptr && cancel->ShouldStop()) return;
        fn(i);
      }
    });
  }
  group.Wait();
}

}  // namespace netout
