#include "common/thread_pool.h"

#include <atomic>

#include "common/logging.h"

namespace netout {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    NETOUT_CHECK(!shutting_down_) << "Submit after shutdown";
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        // shutting_down_ must be true here; drain completed, exit.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, std::size_t count,
                 const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // Chunk the index space so tiny tasks do not thrash the queue lock.
  const std::size_t chunks = pool->num_threads() * 4;
  const std::size_t chunk_size = (count + chunks - 1) / chunks;
  for (std::size_t begin = 0; begin < count; begin += chunk_size) {
    const std::size_t end = std::min(count, begin + chunk_size);
    pool->Submit([begin, end, &fn] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }
  pool->Wait();
}

}  // namespace netout
