#ifndef NETOUT_COMMON_STATUS_H_
#define NETOUT_COMMON_STATUS_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace netout {

/// Machine-readable classification of an error carried by a Status.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument = 1,   // Malformed input supplied by the caller.
  kNotFound = 2,          // A named entity does not exist.
  kAlreadyExists = 3,     // An entity with the same key already exists.
  kOutOfRange = 4,        // An index or id is outside its valid range.
  kFailedPrecondition = 5,// The operation is not valid in the current state.
  kParseError = 6,        // A query or file could not be parsed.
  kIoError = 7,           // Underlying file/stream operation failed.
  kCorruption = 8,        // Stored data failed integrity validation.
  kUnimplemented = 9,     // The requested feature is not implemented.
  kInternal = 10,         // Invariant violation inside the library.
  kDeadlineExceeded = 11, // The operation's wall-clock deadline passed.
  kCancelled = 12,        // The operation was cancelled cooperatively.
  kResourceExhausted = 13,// A per-operation resource budget ran out.
};

/// Returns the canonical lower-case name of a status code ("ok",
/// "invalid-argument", ...). Never returns null.
const char* StatusCodeToString(StatusCode code);

/// A RocksDB/Arrow-style success-or-error value. netout does not throw
/// exceptions across public API boundaries; every fallible operation
/// returns a Status (or a Result<T>, see result.h).
///
/// Status is cheap to copy in the OK case (a single null pointer); error
/// states carry a heap-allocated code+message payload.
///
/// The class is [[nodiscard]]: a function returning Status whose result
/// is ignored at the call site is a compile error under the project's
/// warning gate (-Wall promotes unused-result, NETOUT_WERROR promotes it
/// to an error; regression-proven by the `lint`-labelled compile-failure
/// tests in tests/lint/). A Status that is intentionally best-effort must
/// be consumed explicitly, e.g. logged or bound to a named variable.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(const Status& other)
      : rep_(other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
    }
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error code. [[nodiscard]] individually as
  /// well as via the class: building an error and dropping it on the
  /// floor is never intended.
  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  [[nodiscard]] static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  [[nodiscard]] static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  [[nodiscard]] static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  [[nodiscard]] static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  [[nodiscard]] static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return rep_ == nullptr; }
  [[nodiscard]] StatusCode code() const {
    return rep_ ? rep_->code : StatusCode::kOk;
  }

  /// Human-readable error message; empty for OK statuses.
  [[nodiscard]] std::string_view message() const {
    return rep_ ? std::string_view(rep_->message) : std::string_view();
  }

  /// "ok" or "<code-name>: <message>".
  [[nodiscard]] std::string ToString() const;

  /// Consumes a must-succeed Status: aborts with the carried error in
  /// all build modes. The [[nodiscard]]-conforming way to call a
  /// Status-returning function whose failure is a programming error.
  void CheckOk() const;

  /// Returns a copy of this status with `context` prefixed to the message,
  /// used to add call-site information while propagating errors upward.
  [[nodiscard]] Status WithContext(std::string_view context) const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };

  Status(StatusCode code, std::string msg)
      : rep_(std::make_unique<Rep>(Rep{code, std::move(msg)})) {}

  std::unique_ptr<Rep> rep_;  // null <=> OK
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK Status out of the enclosing function.
#define NETOUT_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::netout::Status _netout_status = (expr);       \
    if (!_netout_status.ok()) return _netout_status; \
  } while (false)

}  // namespace netout

#endif  // NETOUT_COMMON_STATUS_H_
