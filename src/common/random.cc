#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace netout {
namespace {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // xoshiro must not be seeded with all zeros; SplitMix64 guarantees a
  // well-mixed non-degenerate state from any seed.
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(&sm);
  }
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  NETOUT_CHECK(bound > 0) << "NextBounded requires bound > 0";
  // Lemire's multiply-shift; bias is negligible for bounds << 2^64.
  const unsigned __int128 product =
      static_cast<unsigned __int128>(NextUint64()) * bound;
  return static_cast<std::uint64_t>(product >> 64);
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  NETOUT_CHECK(lo <= hi) << "NextInt requires lo <= hi";
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::size_t Rng::NextZipf(std::size_t n, double s) {
  ZipfSampler sampler(n, s);
  return sampler.Sample(this);
}

int Rng::NextPoisson(double lambda) {
  NETOUT_CHECK(lambda >= 0.0);
  if (lambda == 0.0) return 0;
  const double limit = std::exp(-lambda);
  double product = NextDouble();
  int count = 0;
  while (product > limit) {
    ++count;
    product *= NextDouble();
  }
  return count;
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  NETOUT_CHECK(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t rank = 0; rank < n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank + 1), s);
    cdf_[rank] = total;
  }
  for (auto& value : cdf_) {
    value /= total;
  }
}

std::size_t ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace netout
