#ifndef NETOUT_COMMON_THREAD_POOL_H_
#define NETOUT_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace netout {

/// A minimal fixed-size thread pool used by the batch query driver to run
/// independent queries concurrently (the immutable Hin makes query
/// execution lock-free). Benchmarks mirroring the paper run single-threaded;
/// the pool is an extension for interactive workloads.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  std::size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Runs fn(i) for i in [0, count) across the pool and waits for completion.
void ParallelFor(ThreadPool* pool, std::size_t count,
                 const std::function<void(std::size_t)>& fn);

}  // namespace netout

#endif  // NETOUT_COMMON_THREAD_POOL_H_
