#ifndef NETOUT_COMMON_THREAD_POOL_H_
#define NETOUT_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace netout {

class CancellationToken;

/// A minimal fixed-size thread pool shared by the batch query driver
/// (whole-query parallelism) and the executor's intra-query fan-out
/// (ExecOptions::num_threads). The immutable Hin makes query execution
/// lock-free, so workers never contend outside the queue itself.
///
/// Completion tracking belongs to TaskGroup, not the pool: several
/// clients can share one pool and each waits only for its own tasks.
/// A task that throws never terminates the process — raw-submitted
/// exceptions are logged and dropped; TaskGroup-submitted exceptions are
/// captured and rethrown from TaskGroup::Wait().
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker. Prefer
  /// TaskGroup::Submit when completion must be awaited: an exception
  /// escaping a raw-submitted task is logged and dropped.
  void Submit(std::function<void()> task) NETOUT_EXCLUDES(mutex_);

  /// Blocks until the pool is globally idle: every task submitted by
  /// *any* client has finished. Prefer TaskGroup::Wait, which waits only
  /// for its own tasks and propagates their exceptions.
  void Wait() NETOUT_EXCLUDES(mutex_);

  /// Runs one queued task on the calling thread, if any is queued.
  /// Returns false when the queue was empty.
  bool RunOneTask() NETOUT_EXCLUDES(mutex_);

  std::size_t num_threads() const { return workers_.size(); }

 private:
  friend class TaskGroup;

  // A queued task plus the TaskGroup it belongs to (nullptr for raw
  // Submit()). The owner tag lets a waiting group help-drain only its
  // own tasks: pulling a foreign group's (possibly blocking) task onto
  // the waiting thread would reintroduce the wait-scoping bug.
  struct QueuedTask {
    std::function<void()> fn;
    const void* owner;
  };

  // TaskGroup plumbing: tagged submission, and draining restricted to
  // one owner's tasks. TaskGroup::Wait uses the latter while blocked,
  // so a Wait() issued from inside a pool task (e.g. a nested
  // ParallelFor) cannot starve the pool.
  void SubmitOwned(const void* owner, std::function<void()> task)
      NETOUT_EXCLUDES(mutex_);
  bool RunOneTaskOwnedBy(const void* owner) NETOUT_EXCLUDES(mutex_);

  void WorkerLoop() NETOUT_EXCLUDES(mutex_);
  // Runs `task` with the in-flight count released via RAII, so a
  // throwing task cannot leave the pool's idle accounting stuck.
  void ExecuteTask(std::function<void()> task) NETOUT_EXCLUDES(mutex_);

  Mutex mutex_;
  CondVar work_available_;
  CondVar all_done_;
  std::deque<QueuedTask> queue_ NETOUT_GUARDED_BY(mutex_);
  // Written only by the constructor, before any thread but the owner
  // can see the pool; workers never touch it. Safe to read unlocked.
  std::vector<std::thread> workers_;
  std::size_t in_flight_ NETOUT_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ NETOUT_GUARDED_BY(mutex_) = false;
};

/// A completion latch over one batch of tasks on a shared ThreadPool.
/// Multiple groups can run concurrently on the same pool; each Wait()
/// observes only its own tasks (the pool's global Wait() would make
/// concurrent clients block on each other's work).
///
/// Exception contract: the first exception thrown by any task of the
/// group is captured and rethrown from Wait(); later exceptions of the
/// same group are dropped. The destructor waits for completion but
/// swallows any unconsumed exception.
///
/// Thread contract: tasks may Submit() follow-up tasks into their own
/// group; unrelated threads must not Submit() concurrently with Wait().
class TaskGroup {
 public:
  /// `pool` is borrowed and must outlive the group. `cancel` (optional,
  /// borrowed) makes the group cooperative: once the token reports
  /// ShouldStop(), tasks of this group that have not started yet are
  /// skipped (dequeued as no-ops, so Wait() still returns promptly).
  /// Already-running tasks finish; callers that need partial-output
  /// correctness must consult the token after Wait() — a skipped task
  /// left its output slot untouched.
  explicit TaskGroup(ThreadPool* pool,
                     const CancellationToken* cancel = nullptr);

  /// Blocks until every submitted task finished (never throws).
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues `task`; its completion (and any exception) is tracked by
  /// this group.
  void Submit(std::function<void()> task) NETOUT_EXCLUDES(mutex_);

  /// Blocks until every task submitted to this group has finished, then
  /// rethrows the first captured exception, if any. While blocked, the
  /// calling thread helps execute this group's queued tasks (never a
  /// foreign group's, which could block the waiter on unrelated work).
  void Wait() NETOUT_EXCLUDES(mutex_);

 private:
  // Waits for pending_ == 0 without consuming the captured exception.
  void WaitAllFinished() NETOUT_EXCLUDES(mutex_);

  ThreadPool* pool_;
  const CancellationToken* cancel_;
  Mutex mutex_;
  CondVar done_;
  std::size_t pending_ NETOUT_GUARDED_BY(mutex_) = 0;
  std::exception_ptr first_exception_ NETOUT_GUARDED_BY(mutex_);
};

/// Runs fn(i) for i in [0, count) across the pool and waits for
/// completion of exactly these calls (concurrent ParallelFor invocations
/// on one pool do not interfere). The first exception thrown by `fn` is
/// rethrown here. Safe to call from inside a pool task.
///
/// `cancel` (optional, borrowed) stops cooperatively: queued chunks of a
/// stopped token are skipped and running chunks stop between iterations,
/// so some fn(i) calls never happen. The caller must check the token
/// after returning before trusting the outputs.
void ParallelFor(ThreadPool* pool, std::size_t count,
                 const std::function<void(std::size_t)>& fn,
                 const CancellationToken* cancel = nullptr);

}  // namespace netout

#endif  // NETOUT_COMMON_THREAD_POOL_H_
