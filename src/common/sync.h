#ifndef NETOUT_COMMON_SYNC_H_
#define NETOUT_COMMON_SYNC_H_

#include <condition_variable>
#include <mutex>

/// Capability-annotated synchronization layer (DESIGN.md §12).
///
/// Every mutex in the project goes through this header: the wrappers
/// carry Clang Thread Safety Analysis annotations (the Capability model
/// of -Wthread-safety), so "which mutex protects this field" is part of
/// the type system and a lock-discipline mistake — touching a
/// NETOUT_GUARDED_BY field without its Mutex, calling a NETOUT_REQUIRES
/// function lock-free — is a *compile* error under clang instead of a
/// TSAN finding that depends on a test hitting the interleaving.
///
/// On GCC (which has no thread-safety attributes) every macro expands to
/// nothing and the wrappers are zero-cost shims over the std primitives,
/// so non-clang builds are unaffected. scripts/check_thread_safety.sh is
/// the clang gate; scripts/check_invariants.sh enforces that no naked
/// std::mutex/std::lock_guard appears outside this header.

#if defined(__clang__)
#define NETOUT_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define NETOUT_THREAD_ANNOTATION_(x)
#endif

/// Declares a type to be a capability (a lockable resource).
#define NETOUT_CAPABILITY(x) NETOUT_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type that acquires a capability in its constructor
/// and releases it in its destructor.
#define NETOUT_SCOPED_CAPABILITY NETOUT_THREAD_ANNOTATION_(scoped_lockable)

/// Field may only be read or written while holding the named capability.
#define NETOUT_GUARDED_BY(x) NETOUT_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer field whose *pointee* is protected by the named capability.
#define NETOUT_PT_GUARDED_BY(x) NETOUT_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function may only be called while already holding the capabilities.
#define NETOUT_REQUIRES(...) \
  NETOUT_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define NETOUT_ACQUIRE(...) \
  NETOUT_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases a capability the caller held on entry.
#define NETOUT_RELEASE(...) \
  NETOUT_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function acquires the capability only when returning the given value.
#define NETOUT_TRY_ACQUIRE(...) \
  NETOUT_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capabilities (the function acquires them
/// itself; holding one on entry would self-deadlock a non-recursive
/// mutex). This is what makes lock-order mistakes visible to clang.
#define NETOUT_EXCLUDES(...) \
  NETOUT_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Escape hatch: disables the analysis for one function. Reserved for
/// sync.h internals; scripts/check_thread_safety.sh fails on any use
/// outside this header, and every use must carry a one-line
/// justification comment.
#define NETOUT_NO_THREAD_SAFETY_ANALYSIS \
  NETOUT_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace netout {

class CondVar;

/// A std::mutex declared as a TSA capability. Prefer MutexLock for
/// scoped acquisition; Lock()/Unlock() exist for the rare manual
/// protocol and keep the analysis informed via ACQUIRE/RELEASE.
class NETOUT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() NETOUT_ACQUIRE() { mu_.lock(); }
  void Unlock() NETOUT_RELEASE() { mu_.unlock(); }
  bool TryLock() NETOUT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;

  std::mutex mu_;
};

/// RAII lock over a Mutex (the std::lock_guard of the capability
/// layer). Declaring it tells the analysis the capability is held for
/// the enclosing scope, so guarded fields are accessible inside it.
class NETOUT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) NETOUT_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() NETOUT_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to the capability layer. Wait() requires the
/// Mutex to be held (the analysis enforces it), releases it for the
/// block, and re-holds it on return — so the canonical pattern
///
///   MutexLock lock(mu_);
///   while (!predicate) cv_.Wait(mu_);
///
/// type-checks with every predicate read covered by the capability.
/// There is deliberately no predicate-lambda overload: a lambda body is
/// analyzed as a separate function that would not see the held lock,
/// forcing NETOUT_NO_THREAD_SAFETY_ANALYSIS escapes at every call site.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks until notified (spurious
  /// wakeups possible — always wait in a predicate loop). `mu` is held
  /// again when Wait returns.
  void Wait(Mutex& mu) NETOUT_REQUIRES(mu) {
    // adopt_lock / release(): borrow the already-held std::mutex for the
    // duration of the wait without transferring ownership to this frame.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace netout

#endif  // NETOUT_COMMON_SYNC_H_
