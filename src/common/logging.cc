#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/sync.h"

namespace netout {
namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

// Serializes writes so concurrent log lines do not interleave.
// Heap-leaked so logging stays usable during static destruction.
Mutex& LogMutex() {
  static Mutex* mutex = new Mutex;
  return *mutex;
}

}  // namespace

const char* LogLevelToString(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(level, std::memory_order_relaxed);
}

LogLevel GetLogLevel() { return g_log_level.load(std::memory_order_relaxed); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories from __FILE__ for terser output.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LogLevelToString(level) << " " << base << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  {
    MutexLock lock(LogMutex());
    std::fputs(stream_.str().c_str(), stderr);
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace netout
