#ifndef NETOUT_COMMON_RESULT_H_
#define NETOUT_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/logging.h"
#include "common/status.h"

namespace netout {

/// A value-or-error wrapper (Arrow's Result / Abseil's StatusOr).
///
/// Invariant: a Result either holds a value of type T, or a non-OK Status.
/// Constructing a Result from an OK status is a programming error and is
/// converted to an internal error so the invariant always holds.
///
/// [[nodiscard]] like Status: ignoring a returned Result loses the value
/// *and* the error it may carry, so it is a compile error under the
/// warning gate (see tests/lint/ for the enforcing regression tests).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a Result holding `value`. Intentionally implicit so that
  /// `return value;` works in functions returning Result<T>.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error. Intentionally implicit so that
  /// `return Status::NotFound(...);` works.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status; Status::OK() when a value is held.
  [[nodiscard]] Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Access the held value. Must not be called on an error Result.
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? value() : fallback;
  }

  /// Consumes a must-succeed Result whose value is not needed: aborts
  /// with the carried error in *all* build modes (unlike value(), whose
  /// assert disappears under NDEBUG). This is the [[nodiscard]]-
  /// conforming spelling of the old `Foo(...).value();` discard idiom.
  void CheckOk() const {
    NETOUT_CHECK(ok()) << "Result expected OK, got: "
                       << status().ToString();
  }

 private:
  std::variant<T, Status> repr_;
};

/// Evaluates `rexpr` (a Result<T>), propagates its error if any, and
/// otherwise declares/assigns `lhs` from the value.
#define NETOUT_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  NETOUT_ASSIGN_OR_RETURN_IMPL_(                                       \
      NETOUT_RESULT_CONCAT_(_netout_result, __LINE__), lhs, rexpr)

#define NETOUT_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#define NETOUT_RESULT_CONCAT_(a, b) NETOUT_RESULT_CONCAT_IMPL_(a, b)
#define NETOUT_RESULT_CONCAT_IMPL_(a, b) a##b

}  // namespace netout

#endif  // NETOUT_COMMON_RESULT_H_
