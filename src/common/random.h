#ifndef NETOUT_COMMON_RANDOM_H_
#define NETOUT_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace netout {

/// Deterministic, fast pseudo-random generator (xoshiro256**), seeded via
/// SplitMix64. Used by the synthetic data generators and the workload
/// builders so that every experiment is exactly reproducible from a seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t NextUint64();

  /// Uniform in [0, bound) using Lemire's rejection-free-in-expectation
  /// multiply-shift reduction. `bound` must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBool(double p = 0.5);

  /// Geometric-ish heavy-tail sample: Zipf distribution over
  /// {0, ..., n-1} with exponent s, via inverse-CDF on a precomputed table.
  /// For repeated sampling prefer ZipfSampler below.
  std::size_t NextZipf(std::size_t n, double s);

  /// Poisson sample with mean lambda (Knuth's method; lambda expected
  /// small, as with per-paper author counts).
  int NextPoisson(double lambda);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (std::size_t i = items->size(); i > 1; --i) {
      std::size_t j = NextBounded(i);
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

 private:
  std::uint64_t state_[4];
};

/// Precomputed-CDF Zipf sampler over {0, ..., n-1} with exponent s.
/// Rank 0 is the most likely outcome.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  std::size_t Sample(Rng* rng) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace netout

#endif  // NETOUT_COMMON_RANDOM_H_
