#ifndef NETOUT_COMMON_STRING_UTIL_H_
#define NETOUT_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace netout {

/// Splits `input` on `sep`, keeping empty fields. Splitting the empty
/// string yields one empty field (matching absl::StrSplit semantics).
std::vector<std::string> StrSplit(std::string_view input, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StrTrim(std::string_view input);

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// ASCII lower-casing (query keywords are case-insensitive).
std::string AsciiToLower(std::string_view input);

/// True if `text` begins with `prefix` / ends with `suffix`.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Strict full-string numeric parsing.
Result<std::int64_t> ParseInt64(std::string_view text);
Result<double> ParseDouble(std::string_view text);

/// Formats a byte count with binary units ("1.5 MiB").
std::string HumanBytes(std::uint64_t bytes);

/// Formats a double with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

/// Renders `input` safe for one line of terminal/log output: control
/// bytes (including newlines) become C-style escapes (\n, \t, \xNN).
/// Error messages can embed hostile query text; printed raw they would
/// break line-oriented CLI output and log framing.
std::string StrEscapeControl(std::string_view input);

}  // namespace netout

#endif  // NETOUT_COMMON_STRING_UTIL_H_
