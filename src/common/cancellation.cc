#include "common/cancellation.h"

#include <chrono>

namespace netout {
namespace {

std::int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* StopReasonToString(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return "none";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kCancelled:
      return "cancelled";
    case StopReason::kBudget:
      return "budget";
    case StopReason::kCallback:
      return "callback";
  }
  return "unknown";
}

bool IsStopStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kCancelled:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

StopReason StopReasonFromStatus(StatusCode code) {
  switch (code) {
    case StatusCode::kDeadlineExceeded:
      return StopReason::kDeadline;
    case StatusCode::kCancelled:
      return StopReason::kCancelled;
    case StatusCode::kResourceExhausted:
      return StopReason::kBudget;
    default:
      return StopReason::kNone;
  }
}

CancellationToken::CancellationToken(std::int64_t timeout_millis,
                                     std::size_t budget_bytes,
                                     const CancellationToken* external)
    : deadline_nanos_(timeout_millis < 0
                          ? -1
                          : SteadyNowNanos() + timeout_millis * 1'000'000),
      budget_bytes_(budget_bytes),
      external_(external) {}

bool CancellationToken::TripIfFirst(StopReason reason) const {
  StopReason expected = StopReason::kNone;
  return reason_.compare_exchange_strong(expected, reason,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire);
}

void CancellationToken::ChargeBytes(std::size_t bytes) const {
  const std::size_t total =
      charged_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (budget_bytes_ > 0 && total > budget_bytes_) {
    TripIfFirst(StopReason::kBudget);
  }
}

bool CancellationToken::ShouldStop() const {
  if (reason_.load(std::memory_order_relaxed) != StopReason::kNone) {
    return true;
  }
  if (external_ != nullptr && external_->ShouldStop()) {
    // Adopt the chained reason so diagnostics stay precise; a racing
    // external trip that has no reason yet degrades to kCancelled.
    const StopReason external_reason = external_->stop_reason();
    TripIfFirst(external_reason != StopReason::kNone
                    ? external_reason
                    : StopReason::kCancelled);
    return true;
  }
  if (deadline_nanos_ >= 0 && SteadyNowNanos() >= deadline_nanos_) {
    TripIfFirst(StopReason::kDeadline);
    return true;
  }
  return false;
}

Status CancellationToken::ToStatus() const {
  switch (stop_reason()) {
    case StopReason::kNone:
      return Status::OK();
    case StopReason::kDeadline:
      return Status::DeadlineExceeded("query deadline exceeded");
    case StopReason::kCancelled:
      return Status::Cancelled("query cancelled");
    case StopReason::kBudget:
      return Status::ResourceExhausted(
          "query memory budget exhausted by materialization");
    case StopReason::kCallback:
      return Status::Cancelled("stopped by progressive callback");
  }
  return Status::Internal("unknown stop reason");
}

}  // namespace netout
