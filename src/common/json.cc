#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/logging.h"

namespace netout {

std::string JsonEscape(std::string_view value) {
  std::string out = "\"";
  for (unsigned char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += "\"";
  return out;
}

void JsonWriter::Separator() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value directly follows its key; no comma
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) {
      out_ += ",";
    }
    has_element_.back() = true;
    if (pretty_) {
      out_ += "\n";
      Indent();
    }
  }
}

void JsonWriter::Indent() {
  for (std::size_t i = 0; i < has_element_.size(); ++i) {
    out_ += "  ";
  }
}

void JsonWriter::Raw(std::string_view text) { out_.append(text); }

void JsonWriter::BeginObject() {
  Separator();
  Raw("{");
  has_element_.push_back(false);
}

void JsonWriter::EndObject() {
  NETOUT_CHECK(!has_element_.empty()) << "EndObject without BeginObject";
  const bool had = has_element_.back();
  has_element_.pop_back();
  if (pretty_ && had) {
    out_ += "\n";
    Indent();
  }
  Raw("}");
}

void JsonWriter::BeginArray() {
  Separator();
  Raw("[");
  has_element_.push_back(false);
}

void JsonWriter::EndArray() {
  NETOUT_CHECK(!has_element_.empty()) << "EndArray without BeginArray";
  const bool had = has_element_.back();
  has_element_.pop_back();
  if (pretty_ && had) {
    out_ += "\n";
    Indent();
  }
  Raw("]");
}

void JsonWriter::Key(std::string_view key) {
  Separator();
  Raw(JsonEscape(key));
  Raw(pretty_ ? ": " : ":");
  pending_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  Separator();
  Raw(JsonEscape(value));
}

void JsonWriter::Number(double value) {
  Separator();
  if (!std::isfinite(value)) {
    // JSON has no Infinity/NaN; emit null per common convention.
    Raw("null");
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  Raw(buf);
}

void JsonWriter::Int(std::int64_t value) {
  Separator();
  Raw(std::to_string(value));
}

void JsonWriter::Uint(std::uint64_t value) {
  Separator();
  Raw(std::to_string(value));
}

void JsonWriter::Bool(bool value) {
  Separator();
  Raw(value ? "true" : "false");
}

void JsonWriter::Null() {
  Separator();
  Raw("null");
}

void JsonWriter::RawValue(std::string_view json) {
  Separator();
  Raw(json);
}

std::string JsonWriter::Take() && {
  NETOUT_CHECK(has_element_.empty())
      << "unbalanced Begin/End at JSON Take()";
  std::string out = std::move(out_);
  out_.clear();
  return out;
}

// ---------------------------------------------------------------------
// JsonValue
// ---------------------------------------------------------------------

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

Result<std::int64_t> JsonValue::AsInt64() const {
  if (kind_ != Kind::kNumber) {
    return Status::InvalidArgument("value is not a number");
  }
  // 2^63 is the first double not representable back as int64; exclude
  // the boundary itself (it rounds to exactly 2^63, which overflows).
  constexpr double kBound = 9223372036854775808.0;  // 2^63
  if (!std::isfinite(number_) || number_ != std::floor(number_) ||
      number_ >= kBound || number_ < -kBound) {
    return Status::InvalidArgument("number is not an exact int64");
  }
  return static_cast<std::int64_t>(number_);
}

JsonValue JsonValue::MakeBool(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::MakeNumber(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::MakeString(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::MakeObject(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

// ---------------------------------------------------------------------
// JsonParse — recursive descent over untrusted bytes
// ---------------------------------------------------------------------

namespace {

class JsonParser {
 public:
  JsonParser(std::string_view text, const JsonParseOptions& options)
      : text_(text), options_(options) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    NETOUT_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing content after JSON document");
    }
    return value;
  }

 private:
  Status Fail(std::string_view why) const {
    return Status::ParseError("JSON at byte " + std::to_string(pos_) +
                              ": " + std::string(why));
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (AtEnd() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  Status Expect(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Fail("invalid literal");
    }
    pos_ += literal.size();
    return Status::OK();
  }

  Result<JsonValue> ParseValue(std::size_t depth) {
    if (depth > options_.max_depth) {
      return Fail("nesting deeper than the configured limit");
    }
    SkipWhitespace();
    if (AtEnd()) return Fail("unexpected end of input");
    switch (Peek()) {
      case 'n':
        NETOUT_RETURN_IF_ERROR(Expect("null"));
        return JsonValue::MakeNull();
      case 't':
        NETOUT_RETURN_IF_ERROR(Expect("true"));
        return JsonValue::MakeBool(true);
      case 'f':
        NETOUT_RETURN_IF_ERROR(Expect("false"));
        return JsonValue::MakeBool(false);
      case '"': {
        NETOUT_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::MakeString(std::move(s));
      }
      case '[':
        return ParseArray(depth);
      case '{':
        return ParseObject(depth);
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseArray(std::size_t depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (Consume(']')) return JsonValue::MakeArray(std::move(items));
    while (true) {
      NETOUT_ASSIGN_OR_RETURN(JsonValue item, ParseValue(depth + 1));
      items.push_back(std::move(item));
      SkipWhitespace();
      if (Consume(']')) break;
      if (!Consume(',')) return Fail("expected ',' or ']' in array");
    }
    return JsonValue::MakeArray(std::move(items));
  }

  Result<JsonValue> ParseObject(std::size_t depth) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    SkipWhitespace();
    if (Consume('}')) return JsonValue::MakeObject(std::move(members));
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') return Fail("expected object key");
      NETOUT_ASSIGN_OR_RETURN(std::string key, ParseString());
      for (const auto& [existing, unused] : members) {
        (void)unused;
        if (existing == key) return Fail("duplicate object key");
      }
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':' after object key");
      NETOUT_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) break;
      if (!Consume(',')) return Fail("expected ',' or '}' in object");
    }
    return JsonValue::MakeObject(std::move(members));
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (AtEnd()) return Fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c < 0x20) return Fail("raw control byte in string");
      if (c != '\\') {
        out.push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (AtEnd()) return Fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          NETOUT_ASSIGN_OR_RETURN(std::uint32_t code, ParseHex4());
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: require a low surrogate escape next.
            if (!Consume('\\') || !Consume('u')) {
              return Fail("unpaired high surrogate");
            }
            NETOUT_ASSIGN_OR_RETURN(std::uint32_t low, ParseHex4());
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Fail("unpaired low surrogate");
          }
          AppendUtf8(&out, code);
          break;
        }
        default:
          return Fail("invalid escape character");
      }
    }
  }

  Result<std::uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return Fail("invalid hex digit in \\u escape");
      }
    }
    pos_ += 4;
    return value;
  }

  static void AppendUtf8(std::string* out, std::uint32_t code) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Result<JsonValue> ParseNumber() {
    const std::size_t start = pos_;
    if (Consume('-') && AtEnd()) return Fail("lone minus sign");
    // Strict RFC 8259 grammar up front (strtod accepts hex, inf, nan,
    // leading '+' — none of which are JSON).
    if (AtEnd() || Peek() < '0' || Peek() > '9') {
      return Fail("invalid number");
    }
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (Consume('.')) {
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Fail("digit required after decimal point");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Fail("digit required in exponent");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Fail("invalid number");
    // Out-of-range magnitudes become +/-inf (errno ERANGE); JSON has no
    // infinities, so reject rather than smuggle one in.
    if (!std::isfinite(value)) return Fail("number out of range");
    return JsonValue::MakeNumber(value);
  }

  std::string_view text_;
  JsonParseOptions options_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonParse(std::string_view text,
                            const JsonParseOptions& options) {
  return JsonParser(text, options).Parse();
}

}  // namespace netout
