#include "common/json.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace netout {

std::string JsonEscape(std::string_view value) {
  std::string out = "\"";
  for (unsigned char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += "\"";
  return out;
}

void JsonWriter::Separator() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value directly follows its key; no comma
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) {
      out_ += ",";
    }
    has_element_.back() = true;
    if (pretty_) {
      out_ += "\n";
      Indent();
    }
  }
}

void JsonWriter::Indent() {
  for (std::size_t i = 0; i < has_element_.size(); ++i) {
    out_ += "  ";
  }
}

void JsonWriter::Raw(std::string_view text) { out_.append(text); }

void JsonWriter::BeginObject() {
  Separator();
  Raw("{");
  has_element_.push_back(false);
}

void JsonWriter::EndObject() {
  NETOUT_CHECK(!has_element_.empty()) << "EndObject without BeginObject";
  const bool had = has_element_.back();
  has_element_.pop_back();
  if (pretty_ && had) {
    out_ += "\n";
    Indent();
  }
  Raw("}");
}

void JsonWriter::BeginArray() {
  Separator();
  Raw("[");
  has_element_.push_back(false);
}

void JsonWriter::EndArray() {
  NETOUT_CHECK(!has_element_.empty()) << "EndArray without BeginArray";
  const bool had = has_element_.back();
  has_element_.pop_back();
  if (pretty_ && had) {
    out_ += "\n";
    Indent();
  }
  Raw("]");
}

void JsonWriter::Key(std::string_view key) {
  Separator();
  Raw(JsonEscape(key));
  Raw(pretty_ ? ": " : ":");
  pending_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  Separator();
  Raw(JsonEscape(value));
}

void JsonWriter::Number(double value) {
  Separator();
  if (!std::isfinite(value)) {
    // JSON has no Infinity/NaN; emit null per common convention.
    Raw("null");
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  Raw(buf);
}

void JsonWriter::Int(std::int64_t value) {
  Separator();
  Raw(std::to_string(value));
}

void JsonWriter::Uint(std::uint64_t value) {
  Separator();
  Raw(std::to_string(value));
}

void JsonWriter::Bool(bool value) {
  Separator();
  Raw(value ? "true" : "false");
}

void JsonWriter::Null() {
  Separator();
  Raw("null");
}

std::string JsonWriter::Take() && {
  NETOUT_CHECK(has_element_.empty())
      << "unbalanced Begin/End at JSON Take()";
  std::string out = std::move(out_);
  out_.clear();
  return out;
}

}  // namespace netout
