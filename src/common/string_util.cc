#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace netout {

std::vector<std::string> StrSplit(std::string_view input, char sep) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(input.substr(start));
      break;
    }
    fields.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

std::string_view StrTrim(std::string_view input) {
  std::size_t begin = 0;
  std::size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string AsciiToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

Result<std::int64_t> ParseInt64(std::string_view text) {
  std::int64_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    return Status::ParseError("not a valid integer: '" + std::string(text) +
                              "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view text) {
  // std::from_chars<double> is available in libstdc++ 11+; use it directly.
  double value = 0.0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    return Status::ParseError("not a valid number: '" + std::string(text) +
                              "'");
  }
  return value;
}

std::string HumanBytes(std::uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", value, kUnits[unit]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, kUnits[unit]);
  }
  return buf;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string StrEscapeControl(std::string_view input) {
  std::string out;
  out.reserve(input.size());
  for (const char c : input) {
    const unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\\': out += "\\\\"; break;
      default:
        if (u < 0x20 || u == 0x7f) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\x%02x", u);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace netout
