#ifndef NETOUT_COMMON_HASH_H_
#define NETOUT_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

namespace netout {

/// Mixes `value` into `seed` (boost::hash_combine recipe, 64-bit variant).
inline std::size_t HashCombine(std::size_t seed, std::size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

/// FNV-1a over bytes; used by the snapshot format's integrity checksum and
/// by composite hash keys.
inline std::uint64_t Fnv1a64(std::string_view bytes,
                             std::uint64_t seed = 0xcbf29ce484222325ULL) {
  std::uint64_t hash = seed;
  for (char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// Hash functor for pair-like integer keys, e.g. (type id, vertex id).
struct PairHash {
  template <typename A, typename B>
  std::size_t operator()(const std::pair<A, B>& key) const {
    return HashCombine(std::hash<A>()(key.first), std::hash<B>()(key.second));
  }
};

}  // namespace netout

#endif  // NETOUT_COMMON_HASH_H_
