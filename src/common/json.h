#ifndef NETOUT_COMMON_JSON_H_
#define NETOUT_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace netout {

/// Minimal streaming JSON writer with correct string escaping — enough
/// to emit query results and stats for downstream tooling without a
/// third-party dependency. Usage is push-style:
///
///   JsonWriter json;
///   json.BeginObject();
///   json.Key("outliers");
///   json.BeginArray();
///   ...
///   json.EndArray();
///   json.EndObject();
///   std::string text = std::move(json).Take();
///
/// The writer inserts commas automatically. It does not validate
/// completeness — mismatched Begin/End pairs are the caller's bug
/// (checked in debug builds).
class JsonWriter {
 public:
  explicit JsonWriter(bool pretty = false) : pretty_(pretty) {}

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits an object key; must be followed by exactly one value.
  void Key(std::string_view key);

  void String(std::string_view value);
  void Number(double value);
  void Int(std::int64_t value);
  void Uint(std::uint64_t value);
  void Bool(bool value);
  void Null();

  /// Emits `json` verbatim as one value (comma/key handling applies).
  /// The caller guarantees it is a complete, valid JSON document —
  /// used to embed an already-serialized result object or echo a
  /// request id without re-parsing.
  void RawValue(std::string_view json);

  /// Returns the document and resets the writer.
  std::string Take() &&;

 private:
  void Separator();
  void Indent();
  void Raw(std::string_view text);

  bool pretty_;
  std::string out_;
  // Per nesting level: true once the first element was emitted.
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

/// Escapes `value` as a JSON string literal including the quotes.
std::string JsonEscape(std::string_view value);

/// A parsed JSON document node. Objects keep their members in input
/// order (duplicate keys are a parse error — the wire protocol must not
/// depend on which copy wins).
class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; calling the wrong one is a programming error
  /// (checked in debug builds), so test kind() / is_*() first.
  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Object member lookup; null when this is not an object or the key
  /// is absent.
  const JsonValue* Find(std::string_view key) const;

  /// The number as an int64 when it is one exactly (integral, in
  /// range); kInvalidArgument otherwise. The wire protocol uses this
  /// for ids/limits so 1.5 or 1e300 fail loudly instead of truncating.
  Result<std::int64_t> AsInt64() const;

  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool value);
  static JsonValue MakeNumber(double value);
  static JsonValue MakeString(std::string value);
  static JsonValue MakeArray(std::vector<JsonValue> items);
  static JsonValue MakeObject(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

struct JsonParseOptions {
  /// Maximum nesting depth of arrays/objects; deeper input fails with
  /// kParseError instead of recursing toward a stack overflow on
  /// hostile wire bytes.
  std::size_t max_depth = 64;
};

/// Parses one complete JSON document (RFC 8259: UTF-8, \uXXXX escapes
/// incl. surrogate pairs, strict number syntax). Trailing content other
/// than whitespace is an error. Fails with kParseError, never aborts —
/// this is the entry point for untrusted socket bytes.
Result<JsonValue> JsonParse(std::string_view text,
                            const JsonParseOptions& options = {});

}  // namespace netout

#endif  // NETOUT_COMMON_JSON_H_
