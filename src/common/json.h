#ifndef NETOUT_COMMON_JSON_H_
#define NETOUT_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace netout {

/// Minimal streaming JSON writer with correct string escaping — enough
/// to emit query results and stats for downstream tooling without a
/// third-party dependency. Usage is push-style:
///
///   JsonWriter json;
///   json.BeginObject();
///   json.Key("outliers");
///   json.BeginArray();
///   ...
///   json.EndArray();
///   json.EndObject();
///   std::string text = std::move(json).Take();
///
/// The writer inserts commas automatically. It does not validate
/// completeness — mismatched Begin/End pairs are the caller's bug
/// (checked in debug builds).
class JsonWriter {
 public:
  explicit JsonWriter(bool pretty = false) : pretty_(pretty) {}

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits an object key; must be followed by exactly one value.
  void Key(std::string_view key);

  void String(std::string_view value);
  void Number(double value);
  void Int(std::int64_t value);
  void Uint(std::uint64_t value);
  void Bool(bool value);
  void Null();

  /// Returns the document and resets the writer.
  std::string Take() &&;

 private:
  void Separator();
  void Indent();
  void Raw(std::string_view text);

  bool pretty_;
  std::string out_;
  // Per nesting level: true once the first element was emitted.
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

/// Escapes `value` as a JSON string literal including the quotes.
std::string JsonEscape(std::string_view value);

}  // namespace netout

#endif  // NETOUT_COMMON_JSON_H_
