#ifndef NETOUT_COMMON_LOGGING_H_
#define NETOUT_COMMON_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace netout {

enum class LogLevel : std::uint8_t {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

const char* LogLevelToString(LogLevel level);

/// Process-wide minimum level; messages below it are dropped.
/// Defaults to kInfo. Thread-safe (relaxed atomic underneath).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log message that emits on destruction. kFatal aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// glog-style voidifier: `&` binds looser than `<<`, so the whole streamed
/// chain evaluates before being discarded, letting the conditional log
/// macros expand to a single void-typed expression.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal

#define NETOUT_LOG(level)                                                  \
  (::netout::LogLevel::k##level < ::netout::GetLogLevel())                 \
      ? (void)0                                                            \
      : ::netout::internal::Voidify() &                                    \
            ::netout::internal::LogMessage(::netout::LogLevel::k##level,   \
                                           __FILE__, __LINE__)             \
                .stream()

/// CHECK-style assertion that is active in all build modes. On failure it
/// logs the condition at kFatal level and aborts.
#define NETOUT_CHECK(cond)                                              \
  (cond) ? (void)0                                                      \
         : ::netout::internal::Voidify() &                              \
               ::netout::internal::LogMessage(                          \
                   ::netout::LogLevel::kFatal, __FILE__, __LINE__)      \
                       .stream()                                        \
                   << "Check failed: " #cond " "

}  // namespace netout

#endif  // NETOUT_COMMON_LOGGING_H_
