#ifndef NETOUT_COMMON_STOPWATCH_H_
#define NETOUT_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace netout {

/// Monotonic wall-clock stopwatch used by the engine's per-stage timers
/// and the benchmark harness.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts timing from now.
  void Reset() { start_ = Clock::now(); }

  /// Nanoseconds elapsed since construction or the last Reset().
  std::int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedMicros() const {
    return static_cast<double>(ElapsedNanos()) / 1e3;
  }
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time across multiple timed sections; used for the
/// Figure 4 per-stage processing-time breakdown.
class TimeAccumulator {
 public:
  /// Adds `nanos` to the running total.
  void AddNanos(std::int64_t nanos) { total_nanos_ += nanos; }

  std::int64_t TotalNanos() const { return total_nanos_; }
  double TotalMillis() const { return static_cast<double>(total_nanos_) / 1e6; }

  void Clear() { total_nanos_ = 0; }

 private:
  std::int64_t total_nanos_ = 0;
};

/// RAII guard that adds its lifetime to a TimeAccumulator. A null
/// accumulator disables timing at negligible cost.
class ScopedTimer {
 public:
  explicit ScopedTimer(TimeAccumulator* acc) : acc_(acc) {}
  ~ScopedTimer() {
    if (acc_ != nullptr) acc_->AddNanos(watch_.ElapsedNanos());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimeAccumulator* acc_;
  Stopwatch watch_;
};

}  // namespace netout

#endif  // NETOUT_COMMON_STOPWATCH_H_
