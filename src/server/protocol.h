#ifndef NETOUT_SERVER_PROTOCOL_H_
#define NETOUT_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "graph/hin.h"
#include "query/executor.h"

namespace netout {

/// The netout_serve wire protocol: newline-delimited JSON (NDJSON).
/// Every request is one JSON object on one line; every response is one
/// JSON object on one line, in request order per connection. Grammar:
///
///   request  = { "op": "query", "q": "<netout query text>",
///                ["id": <number|string|bool|null>,]
///                ["timeout_ms": N,] ["memory_budget_mb": N] } NL
///            | { "op": "add_vertex", "type": "<vertex type>",
///                "name": "<vertex name>", ["id": ...] } NL
///            | { "op": "add_edge" | "delete_edge",
///                "edge": "<edge type>", "src": "<name>",
///                "dst": "<name>", ["count": N,] ["id": ...] } NL
///            | { "op": "ping" | "stats" | "config" | "shutdown",
///                ["id": ...] } NL
///   response = { ["id": <echoed>,] "ok": true,  "op": "<op>", ... } NL
///            | { ["id": <echoed>,] "ok": false, "op": "<op>",
///                "error": { "code": "<status-code>",
///                           "message": "<escaped text>" } } NL
///
/// A query response carries "result" (the QueryResultToJson object,
/// bitwise identical to `netout_query --json` on the same snapshot and
/// options), "latency_ms" (end-to-end, including queue wait) and
/// "shed": true when admission control tightened the deadline under
/// load. Error text always passes through JsonEscape, so a hostile
/// query whose parse error embeds newlines or quotes can never break
/// the line framing.
///
/// Mutation ops (add_vertex / add_edge / delete_edge) are serialized
/// through the dispatcher: each one commits a new graph epoch, patches
/// the delta-maintained indexes, and answers with the epoch it
/// committed. Queries parsed after a mutation on any connection run
/// against the new snapshot. Endpoints are named by (type, name);
/// add_edge creates missing endpoint vertices implicitly.

/// Caps applied to untrusted request bytes before any parsing.
struct ProtocolLimits {
  /// Longest accepted request line (bytes, excluding the newline). A
  /// line that exceeds this poisons the connection: framing can no
  /// longer be trusted, so the session is closed after an error
  /// response.
  std::size_t max_line_bytes = 1 << 20;
  /// JSON nesting cap for request documents.
  std::size_t max_json_depth = 32;
};

enum class RequestOp : std::uint8_t {
  kQuery,
  kAddVertex,
  kAddEdge,
  kDeleteEdge,
  kPing,
  kStats,
  kConfig,
  kShutdown,
};

const char* RequestOpName(RequestOp op);

/// True for the ops that mutate the graph (add_vertex / add_edge /
/// delete_edge).
bool IsMutationOp(RequestOp op);

/// One parsed request. `id_json` is the client's "id" member
/// re-serialized (empty = absent); responses echo it verbatim so
/// clients can correlate pipelined requests.
struct Request {
  RequestOp op = RequestOp::kQuery;
  std::string id_json;
  std::string query;                      // kQuery only
  std::int64_t timeout_millis = -1;       // < 0: server default applies
  std::int64_t memory_budget_bytes = -1;  // < 0: server default applies
  // Mutation members (kAddVertex: type+name; kAddEdge/kDeleteEdge:
  // edge+src+dst, count defaulting to 1). Names, not ids: the wire
  // protocol never exposes LocalIds, which are snapshot-relative.
  std::string vertex_type;  // "type"
  std::string vertex_name;  // "name"
  std::string edge_type;    // "edge"
  std::string src_name;     // "src"
  std::string dst_name;     // "dst"
  std::int64_t count = 1;   // "count" (parallel-edge multiplicity)
};

/// Parses one request line. Fails with kParseError on malformed JSON or
/// schema violations (unknown op, wrong member types, unknown members);
/// the connection stays usable because line framing is intact.
Result<Request> ParseRequest(std::string_view line,
                             const ProtocolLimits& limits);

/// Incremental newline framing over an untrusted byte stream. Feed
/// whatever recv() produced; pop complete lines. Once a line exceeds
/// max_line_bytes the assembler latches into the overflowed state
/// (Append fails, NextLine yields nothing) — the caller must error out
/// the session, since resynchronizing framing is impossible.
class LineAssembler {
 public:
  explicit LineAssembler(std::size_t max_line_bytes)
      : max_line_bytes_(max_line_bytes) {}

  /// Buffers `bytes`; kResourceExhausted once the current line exceeds
  /// the cap (sticky).
  Status Append(std::string_view bytes);

  /// Pops the next complete line into `*line` (trailing '\r' stripped);
  /// false when no full line is buffered.
  bool NextLine(std::string* line);

  bool overflowed() const { return overflowed_; }
  std::size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::size_t max_line_bytes_;
  std::string buffer_;
  std::size_t scan_pos_ = 0;  // first byte not yet scanned for '\n'
  bool overflowed_ = false;
};

/// Response builders. Every string member is JsonEscape'd; the returned
/// payload is exactly one line including the trailing '\n'.
std::string BuildErrorResponse(const Request* request,
                               const Status& status);
std::string BuildPingResponse(const Request& request);
std::string BuildQueryResponse(const Hin& hin, const Request& request,
                               const QueryResult& result, bool shed,
                               double latency_ms);
/// STATS / CONFIG carry a caller-built JSON object under "stats" /
/// "config" (see Server::StatsJson / Server::ConfigJson).
std::string BuildObjectResponse(const Request& request,
                                std::string_view key,
                                std::string_view object_json);
/// Acknowledges a committed mutation with the graph epoch it produced
/// (every query response at or after this epoch reflects the change).
std::string BuildMutationResponse(const Request& request,
                                  std::uint64_t epoch);

}  // namespace netout

#endif  // NETOUT_SERVER_PROTOCOL_H_
