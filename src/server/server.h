#ifndef NETOUT_SERVER_SERVER_H_
#define NETOUT_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/cancellation.h"
#include "common/result.h"
#include "graph/delta.h"
#include "index/cached_index.h"
#include "index/pm_index.h"
#include "index/spm_index.h"
#include "query/engine.h"
#include "server/protocol.h"

namespace netout {

/// Everything the mutation verbs (add_vertex / add_edge / delete_edge)
/// need: the mutation manager plus the delta-maintained indexes to
/// patch after each commit. All pointers are borrowed and must outlive
/// the server; every one is optional — a null `graph` makes the server
/// read-only (mutation requests fail with kFailedPrecondition), and
/// null indexes simply skip that maintenance step (their epoch guards
/// then degrade lookups to traversal fallback, never to wrong answers).
struct MutationContext {
  MutableHin* graph = nullptr;
  PmIndex* pm = nullptr;
  SpmIndex* spm = nullptr;
  CachedIndex* cache = nullptr;
};

/// netout_serve configuration. The server loads the HIN and indexes
/// once and keeps them resident; every connection then pays only
/// parse + plan + execute, which is what makes sustained QPS (rather
/// than per-process wall clock) the observable metric.
struct ServerOptions {
  /// Listen address. Loopback by default: the protocol is unauthenticated.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  std::uint16_t port = 0;

  /// Concurrent session cap; excess connections get one error line and
  /// an immediate close.
  std::size_t max_sessions = 256;
  /// Per-session pending-response cap; a reader slower than its own
  /// query stream is dropped instead of buffering without bound.
  std::size_t max_session_write_bytes = std::size_t{64} << 20;
  /// Request line / JSON caps (see ProtocolLimits).
  ProtocolLimits limits;

  /// BatchRunner worker threads executing queries.
  std::size_t num_threads = 2;
  /// Lower each dispatched batch into one merged physical plan
  /// (cross-request CSE + shared prefixes); per-request answers are
  /// bitwise identical either way.
  bool merge_batches = true;

  /// Default & ceiling for the per-request deadline: a request's
  /// timeout_ms may lower it but never raise it past this. < 0 = no
  /// default deadline (requests may still set one).
  std::int64_t default_timeout_millis = -1;
  /// Global materialization byte budget, divided evenly across the
  /// worker concurrency to form the per-request ceiling. 0 = unlimited.
  std::size_t memory_budget_bytes = 0;

  /// Load shedding: once this many requests are queued ahead of the
  /// dispatcher, new queries are admitted with their deadline tightened
  /// to shed_timeout_millis and answered best-effort
  /// (StopPolicy::kPartial -> "shed": true, possibly degraded). 0 =
  /// auto (4 * num_threads).
  std::size_t shed_backlog = 0;
  std::int64_t shed_timeout_millis = 250;
  /// Hard backlog cap: beyond it queries are refused outright with
  /// resource-exhausted. 0 = auto (32 * num_threads).
  std::size_t max_backlog = 0;

  /// Whether the wire "shutdown" op is honored (tests and local tooling
  /// want it; a shared deployment may prefer signals only).
  bool allow_remote_shutdown = true;
};

/// Monotonic counters since Start(); all values are point-in-time
/// snapshots taken without stopping the world.
struct ServerStatsSnapshot {
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_closed = 0;
  std::uint64_t sessions_refused = 0;
  std::uint64_t sessions_overflowed = 0;
  std::uint64_t requests_received = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t queries_ok = 0;
  std::uint64_t queries_error = 0;
  std::uint64_t queries_degraded = 0;
  std::uint64_t queries_shed = 0;
  std::uint64_t queries_refused = 0;
  std::uint64_t batches = 0;
  std::uint64_t mutations_ok = 0;
  std::uint64_t mutations_error = 0;
  std::uint64_t epochs_committed = 0;
  std::uint64_t vertices_added = 0;
  std::uint64_t vertices_deleted = 0;
  std::uint64_t edges_added = 0;
  std::uint64_t edges_deleted = 0;
  std::uint64_t index_rows_patched = 0;
  /// ApplyDelta failures after a successful commit. The epoch guards
  /// keep answers correct (the stale index degrades to traversal), but
  /// a non-zero count means the fast path is silently eroding.
  std::uint64_t index_patch_failures = 0;
  std::uint64_t graph_epoch = 0;
  /// Sharded-storage residency (segment.h); all zero when the graph is
  /// served from memory.
  bool storage_sharded = false;
  std::uint64_t storage_budget_bytes = 0;
  std::uint64_t storage_mapped_bytes = 0;
  std::uint64_t storage_resident_bytes = 0;
  std::uint64_t storage_segments = 0;
  std::uint64_t storage_resident_segments = 0;
  std::uint64_t storage_faults = 0;
  std::uint64_t storage_evictions = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t latency_count = 0;
  double latency_mean_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p90_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;
};

/// The resident query daemon: an event-driven connection multiplexor
/// (non-blocking accept/read/write over one poll loop) speaking the
/// NDJSON protocol of server/protocol.h, dispatching parsed queries as
/// merged batches onto the existing BatchRunner (ThreadPool + shared
/// physical-plan DAG), with the PR 5 deadline/budget/cancel machinery
/// as per-connection admission control.
///
/// Threading: Start() spawns one dispatcher thread; Serve() runs the
/// poll loop on the calling thread until shutdown. RequestShutdown()
/// is safe from any thread *and* from signal handlers (it only touches
/// a lock-free atomic and write()s the wakeup pipe) — netout_serve
/// wires SIGINT/SIGTERM to it for drain-and-exit: stop accepting, trip
/// the drain CancellationToken through every in-flight query (they
/// resolve as degraded partials), flush the responses, close, return.
///
/// Ordering: query responses come back in request order per
/// connection. Admin ops (ping/stats/config/shutdown) are answered
/// from the poll loop immediately and may overtake earlier query
/// responses still executing — correlate by "id".
///
/// Mutations: add_vertex / add_edge / delete_edge requests flow through
/// the same dispatcher queue as queries, which gives the serialization
/// the delta-maintained indexes need for free: the dispatcher splits
/// each drained batch into maximal runs of queries and runs of
/// mutations, executes query runs on the BatchRunner, folds each
/// mutation run into ONE MutableHin commit (one epoch), patches
/// PM/SPM, invalidates the cache by key, and swaps the published
/// snapshot — all before the next query run starts. Queries admitted
/// after a mutation (on any connection) therefore always see it.
class Server {
 public:
  /// `engine_options.index` (and `cache`, when the index is a
  /// CachedIndex whose stats STATS should expose) are borrowed and must
  /// outlive the server. exec.num_threads / stop_policy / timeout /
  /// budget members of engine_options are overridden by the server's
  /// per-request admission control.
  Server(HinPtr hin, const EngineOptions& engine_options,
         const ServerOptions& options, const CachedIndex* cache = nullptr,
         const MutationContext& mutations = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds + listens and starts the dispatcher. Fails with kIoError on
  /// socket errors (port in use, bad host).
  Status Start();

  /// Runs the poll loop until a shutdown request has fully drained.
  /// Must be preceded by Start().
  Status Serve();

  /// Begins drain-and-exit; async-signal-safe, idempotent.
  void RequestShutdown();

  /// The bound port (after Start()); useful with options.port == 0.
  std::uint16_t port() const;

  ServerStatsSnapshot stats() const;
  /// The STATS / CONFIG admin payloads (one JSON object each).
  std::string StatsJson() const;
  std::string ConfigJson() const;

  /// The server-wide drain token chained into every per-request token.
  const CancellationToken& drain_token() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace netout

#endif  // NETOUT_SERVER_SERVER_H_
