#include "server/protocol.h"

#include <utility>

#include "common/json.h"
#include "query/result_json.h"

namespace netout {
namespace {

/// Re-serializes an id value for verbatim echo. Only scalar ids are
/// accepted — an object/array id is hostile-input bait (it can nest to
/// the depth cap and bloat every response).
Result<std::string> SerializeId(const JsonValue& id) {
  JsonWriter json;
  switch (id.kind()) {
    case JsonValue::Kind::kNull:
      json.Null();
      break;
    case JsonValue::Kind::kBool:
      json.Bool(id.bool_value());
      break;
    case JsonValue::Kind::kNumber:
      json.Number(id.number_value());
      break;
    case JsonValue::Kind::kString:
      json.String(id.string_value());
      break;
    default:
      return Status::ParseError("'id' must be a scalar");
  }
  return std::move(json).Take();
}

Result<std::int64_t> PositiveInt(const JsonValue& value,
                                 std::string_view name) {
  Result<std::int64_t> parsed = value.AsInt64();
  if (!parsed.ok() || parsed.value() < 0) {
    return Status::ParseError("'" + std::string(name) +
                              "' must be a non-negative integer");
  }
  return parsed;
}

void BeginEnvelope(JsonWriter* json, const Request* request, bool ok,
                   RequestOp op) {
  json->BeginObject();
  if (request != nullptr && !request->id_json.empty()) {
    json->Key("id");
    json->RawValue(request->id_json);
  }
  json->Key("ok");
  json->Bool(ok);
  json->Key("op");
  json->String(RequestOpName(op));
}

}  // namespace

const char* RequestOpName(RequestOp op) {
  switch (op) {
    case RequestOp::kQuery:
      return "query";
    case RequestOp::kAddVertex:
      return "add_vertex";
    case RequestOp::kAddEdge:
      return "add_edge";
    case RequestOp::kDeleteEdge:
      return "delete_edge";
    case RequestOp::kPing:
      return "ping";
    case RequestOp::kStats:
      return "stats";
    case RequestOp::kConfig:
      return "config";
    case RequestOp::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

bool IsMutationOp(RequestOp op) {
  return op == RequestOp::kAddVertex || op == RequestOp::kAddEdge ||
         op == RequestOp::kDeleteEdge;
}

Result<Request> ParseRequest(std::string_view line,
                             const ProtocolLimits& limits) {
  if (line.size() > limits.max_line_bytes) {
    return Status::ResourceExhausted("request line exceeds " +
                                     std::to_string(limits.max_line_bytes) +
                                     " bytes");
  }
  JsonParseOptions parse_options;
  parse_options.max_depth = limits.max_json_depth;
  NETOUT_ASSIGN_OR_RETURN(JsonValue doc, JsonParse(line, parse_options));
  if (!doc.is_object()) {
    return Status::ParseError("request must be a JSON object");
  }

  Request request;
  bool saw_op = false;
  bool saw_mutation_member = false;
  bool saw_count = false;
  const auto parse_name = [&](const JsonValue& value, std::string_view name,
                              std::string* out) -> Status {
    if (!value.is_string() || value.string_value().empty()) {
      return Status::ParseError("'" + std::string(name) +
                                "' must be a non-empty string");
    }
    *out = value.string_value();
    saw_mutation_member = true;
    return Status::OK();
  };
  for (const auto& [key, value] : doc.members()) {
    if (key == "op") {
      if (!value.is_string()) {
        return Status::ParseError("'op' must be a string");
      }
      const std::string& op = value.string_value();
      if (op == "query") {
        request.op = RequestOp::kQuery;
      } else if (op == "add_vertex") {
        request.op = RequestOp::kAddVertex;
      } else if (op == "add_edge") {
        request.op = RequestOp::kAddEdge;
      } else if (op == "delete_edge") {
        request.op = RequestOp::kDeleteEdge;
      } else if (op == "ping") {
        request.op = RequestOp::kPing;
      } else if (op == "stats") {
        request.op = RequestOp::kStats;
      } else if (op == "config") {
        request.op = RequestOp::kConfig;
      } else if (op == "shutdown") {
        request.op = RequestOp::kShutdown;
      } else {
        return Status::ParseError("unknown op '" + op + "'");
      }
      saw_op = true;
    } else if (key == "id") {
      NETOUT_ASSIGN_OR_RETURN(request.id_json, SerializeId(value));
    } else if (key == "q") {
      if (!value.is_string()) {
        return Status::ParseError("'q' must be a string");
      }
      request.query = value.string_value();
    } else if (key == "type") {
      NETOUT_RETURN_IF_ERROR(parse_name(value, key, &request.vertex_type));
    } else if (key == "name") {
      NETOUT_RETURN_IF_ERROR(parse_name(value, key, &request.vertex_name));
    } else if (key == "edge") {
      NETOUT_RETURN_IF_ERROR(parse_name(value, key, &request.edge_type));
    } else if (key == "src") {
      NETOUT_RETURN_IF_ERROR(parse_name(value, key, &request.src_name));
    } else if (key == "dst") {
      NETOUT_RETURN_IF_ERROR(parse_name(value, key, &request.dst_name));
    } else if (key == "count") {
      NETOUT_ASSIGN_OR_RETURN(request.count, PositiveInt(value, "count"));
      if (request.count < 1) {
        return Status::ParseError("'count' must be at least 1");
      }
      saw_mutation_member = true;
      saw_count = true;
    } else if (key == "timeout_ms") {
      NETOUT_ASSIGN_OR_RETURN(request.timeout_millis,
                              PositiveInt(value, "timeout_ms"));
    } else if (key == "memory_budget_mb") {
      NETOUT_ASSIGN_OR_RETURN(std::int64_t mb,
                              PositiveInt(value, "memory_budget_mb"));
      // Cap before shifting: 2^43 MiB already exceeds any real budget
      // and (mb << 20) would overflow int64 near 2^43.
      if (mb > (std::int64_t{1} << 40)) {
        return Status::ParseError("'memory_budget_mb' is implausibly large");
      }
      request.memory_budget_bytes = mb << 20;
    } else {
      // Unknown members are rejected, mirroring the CLI's unknown-flag
      // policy: a typo like "timout_ms" must fail loudly, not silently
      // run without the limit.
      return Status::ParseError("unknown request member '" + key + "'");
    }
  }
  if (!saw_op) {
    if (request.query.empty()) {
      return Status::ParseError("request needs 'op' (or a 'q' query)");
    }
    request.op = RequestOp::kQuery;  // {"q": ...} shorthand
  }
  if (request.op == RequestOp::kQuery && request.query.empty()) {
    return Status::ParseError("'query' op needs a non-empty 'q'");
  }
  if (request.op != RequestOp::kQuery && !request.query.empty()) {
    return Status::ParseError("'q' is only valid with op 'query'");
  }
  if (!IsMutationOp(request.op) && saw_mutation_member) {
    return Status::ParseError(
        "'type'/'name'/'edge'/'src'/'dst'/'count' are only valid with "
        "mutation ops");
  }
  if (request.op == RequestOp::kAddVertex) {
    if (request.vertex_type.empty() || request.vertex_name.empty()) {
      return Status::ParseError("'add_vertex' needs 'type' and 'name'");
    }
    if (!request.edge_type.empty() || !request.src_name.empty() ||
        !request.dst_name.empty() || saw_count) {
      return Status::ParseError(
          "'add_vertex' takes only 'type' and 'name'");
    }
  } else if (request.op == RequestOp::kAddEdge ||
             request.op == RequestOp::kDeleteEdge) {
    if (request.edge_type.empty() || request.src_name.empty() ||
        request.dst_name.empty()) {
      return Status::ParseError("'" +
                                std::string(RequestOpName(request.op)) +
                                "' needs 'edge', 'src' and 'dst'");
    }
    if (!request.vertex_type.empty() || !request.vertex_name.empty()) {
      return Status::ParseError(
          "'type'/'name' are only valid with 'add_vertex'");
    }
  }
  return request;
}

Status LineAssembler::Append(std::string_view bytes) {
  if (overflowed_) {
    return Status::ResourceExhausted("line framing already overflowed");
  }
  buffer_.append(bytes.data(), bytes.size());
  // Overflow check against the longest unterminated prefix: everything
  // before scan_pos_ has been scanned and contains no '\n', so if the
  // buffered tail has none either and exceeds the cap, no future byte
  // can rescue the line.
  if (buffer_.size() > max_line_bytes_ &&
      buffer_.find('\n', scan_pos_) == std::string::npos) {
    overflowed_ = true;
    return Status::ResourceExhausted(
        "request line exceeds " + std::to_string(max_line_bytes_) +
        " bytes without a newline");
  }
  return Status::OK();
}

bool LineAssembler::NextLine(std::string* line) {
  if (overflowed_) return false;
  const std::size_t newline = buffer_.find('\n');
  if (newline == std::string::npos) {
    scan_pos_ = buffer_.size();
    return false;
  }
  std::size_t end = newline;
  if (end > 0 && buffer_[end - 1] == '\r') --end;
  line->assign(buffer_, 0, end);
  buffer_.erase(0, newline + 1);
  scan_pos_ = 0;
  return true;
}

std::string BuildErrorResponse(const Request* request,
                               const Status& status) {
  JsonWriter json;
  BeginEnvelope(&json, request, /*ok=*/false,
                request != nullptr ? request->op : RequestOp::kQuery);
  json.Key("error");
  json.BeginObject();
  json.Key("code");
  json.String(StatusCodeToString(status.code()));
  json.Key("message");
  json.String(status.message());
  json.EndObject();
  json.EndObject();
  std::string out = std::move(json).Take();
  out.push_back('\n');
  return out;
}

std::string BuildPingResponse(const Request& request) {
  JsonWriter json;
  BeginEnvelope(&json, &request, /*ok=*/true, RequestOp::kPing);
  json.EndObject();
  std::string out = std::move(json).Take();
  out.push_back('\n');
  return out;
}

std::string BuildQueryResponse(const Hin& hin, const Request& request,
                               const QueryResult& result, bool shed,
                               double latency_ms) {
  JsonWriter json;
  BeginEnvelope(&json, &request, /*ok=*/true, RequestOp::kQuery);
  if (shed) {
    json.Key("shed");
    json.Bool(true);
  }
  json.Key("latency_ms");
  json.Number(latency_ms);
  json.Key("result");
  json.RawValue(QueryResultToJson(hin, result, /*pretty=*/false));
  json.EndObject();
  std::string out = std::move(json).Take();
  out.push_back('\n');
  return out;
}

std::string BuildMutationResponse(const Request& request,
                                  std::uint64_t epoch) {
  JsonWriter json;
  BeginEnvelope(&json, &request, /*ok=*/true, request.op);
  json.Key("epoch");
  json.Uint(epoch);
  json.EndObject();
  std::string out = std::move(json).Take();
  out.push_back('\n');
  return out;
}

std::string BuildObjectResponse(const Request& request,
                                std::string_view key,
                                std::string_view object_json) {
  JsonWriter json;
  BeginEnvelope(&json, &request, /*ok=*/true, request.op);
  json.Key(key);
  json.RawValue(object_json);
  json.EndObject();
  std::string out = std::move(json).Take();
  out.push_back('\n');
  return out;
}

}  // namespace netout
