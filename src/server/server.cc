#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/sync.h"
#include "graph/delta.h"
#include "graph/segment.h"
#include "index/incremental.h"
#include "query/batch.h"

namespace netout {
namespace {

using Clock = std::chrono::steady_clock;

Status ErrnoStatus(std::string_view what) {
  return Status::IoError(std::string(what) + ": " +
                         std::strerror(errno));
}

double NanosToMillis(std::uint64_t nanos) {
  return static_cast<double>(nanos) / 1e6;
}

/// Lock-free latency histogram over power-of-two nanosecond buckets.
/// Quantiles report the geometric midpoint of the winning bucket, so
/// p99 is accurate to a factor of sqrt(2) — plenty for load shedding
/// and bench sanity, with zero contention on the hot path.
struct LatencyHistogram {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> total_nanos{0};
  std::atomic<std::uint64_t> max_nanos{0};
  std::atomic<std::uint64_t> buckets[64] = {};

  void Record(std::uint64_t nanos) {
    count.fetch_add(1, std::memory_order_relaxed);
    total_nanos.fetch_add(nanos, std::memory_order_relaxed);
    std::uint64_t seen = max_nanos.load(std::memory_order_relaxed);
    while (nanos > seen &&
           !max_nanos.compare_exchange_weak(seen, nanos,
                                            std::memory_order_relaxed)) {
    }
    const int bucket = std::bit_width(nanos | 1) - 1;
    buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  }

  double QuantileMillis(double q) const {
    const std::uint64_t n = count.load(std::memory_order_relaxed);
    if (n == 0) return 0.0;
    const std::uint64_t target =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(q * n + 0.5));
    std::uint64_t seen = 0;
    for (int i = 0; i < 64; ++i) {
      seen += buckets[i].load(std::memory_order_relaxed);
      if (seen >= target) {
        return NanosToMillis((std::uint64_t{1} << i) +
                             ((std::uint64_t{1} << i) >> 1));
      }
    }
    return NanosToMillis(max_nanos.load(std::memory_order_relaxed));
  }
};

struct Counters {
  std::atomic<std::uint64_t> sessions_opened{0};
  std::atomic<std::uint64_t> sessions_closed{0};
  std::atomic<std::uint64_t> sessions_refused{0};
  std::atomic<std::uint64_t> sessions_overflowed{0};
  std::atomic<std::uint64_t> requests_received{0};
  std::atomic<std::uint64_t> protocol_errors{0};
  std::atomic<std::uint64_t> queries_ok{0};
  std::atomic<std::uint64_t> queries_error{0};
  std::atomic<std::uint64_t> queries_degraded{0};
  std::atomic<std::uint64_t> queries_shed{0};
  std::atomic<std::uint64_t> queries_refused{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> mutations_ok{0};
  std::atomic<std::uint64_t> mutations_error{0};
  std::atomic<std::uint64_t> epochs_committed{0};
  std::atomic<std::uint64_t> vertices_added{0};
  std::atomic<std::uint64_t> vertices_deleted{0};
  std::atomic<std::uint64_t> edges_added{0};
  std::atomic<std::uint64_t> edges_deleted{0};
  std::atomic<std::uint64_t> index_rows_patched{0};
  std::atomic<std::uint64_t> index_patch_failures{0};
  std::atomic<std::uint64_t> graph_epoch{0};
  std::atomic<std::uint64_t> bytes_read{0};
  std::atomic<std::uint64_t> bytes_written{0};
  // Aggregated engine stats across finished queries.
  std::atomic<std::uint64_t> plan_ops_executed{0};
  std::atomic<std::uint64_t> vectors_materialized{0};
  std::atomic<std::uint64_t> vectors_reused{0};
  LatencyHistogram latency;
};

}  // namespace

struct Server::Impl {
  /// One connected client. Owned by the poll loop; the dispatcher never
  /// touches a Session (it addresses completions by session id, and the
  /// poll loop resolves the id — or drops the payload if the session
  /// died first).
  struct Session {
    int fd = -1;
    std::uint64_t id = 0;
    LineAssembler lines;
    std::string out;             // pending response bytes
    std::size_t out_offset = 0;  // already-flushed prefix of `out`
    std::size_t inflight = 0;    // queries handed to the dispatcher
    bool read_closed = false;
    bool close_after_flush = false;
    bool dead = false;  // fatal I/O or overflow; reaped by SweepClosable

    explicit Session(std::size_t max_line_bytes) : lines(max_line_bytes) {}
  };

  /// A query admitted by the poll loop, waiting for the dispatcher. The
  /// token is heap-owned here because BatchRunner borrows it for the
  /// whole Run call.
  struct PendingRequest {
    std::uint64_t session_id = 0;
    Request request;
    bool shed = false;
    std::unique_ptr<CancellationToken> token;
    Clock::time_point received;
  };

  struct Completion {
    std::uint64_t session_id = 0;
    std::string payload;
  };

  /// The published snapshot queries run against. Written only by the
  /// dispatcher (epoch publication after a commit) but read by the poll
  /// thread too (ConfigJson), hence the mutex; the dispatcher reads its
  /// own writes so a per-segment copy is all it ever locks for.
  mutable Mutex snapshot_mutex;
  HinPtr hin NETOUT_GUARDED_BY(snapshot_mutex);
  EngineOptions engine_options;
  ServerOptions options;
  const CachedIndex* cache = nullptr;
  MutationContext mutations;

  std::unique_ptr<BatchRunner> runner;
  CancellationToken drain_token;

  int listen_fd = -1;
  int wake_read_fd = -1;
  int wake_write_fd = -1;
  std::uint16_t bound_port = 0;
  bool started = false;

  std::atomic<bool> shutdown_requested{false};
  bool draining = false;
  Clock::time_point drain_started;

  std::unordered_map<int, std::unique_ptr<Session>> sessions_by_fd;
  std::unordered_map<std::uint64_t, Session*> sessions_by_id;
  std::uint64_t next_session_id = 1;

  // Poll loop -> dispatcher handoff. dispatch_mutex and
  // completion_mutex are never held together (DESIGN.md §12): requests
  // cross under dispatch_mutex, responses cross back under
  // completion_mutex, and all other session state is poll-thread-only.
  Mutex dispatch_mutex;
  CondVar dispatch_cv;
  std::deque<PendingRequest> pending NETOUT_GUARDED_BY(dispatch_mutex);
  bool dispatcher_stop NETOUT_GUARDED_BY(dispatch_mutex) = false;
  std::thread dispatcher;

  Mutex completion_mutex;
  std::vector<Completion> completions NETOUT_GUARDED_BY(completion_mutex);

  Counters counters;
  Clock::time_point start_time;

  std::size_t shed_backlog_effective = 0;
  std::size_t max_backlog_effective = 0;

  ~Impl() { Cleanup(); }

  HinPtr CurrentSnapshot() const NETOUT_EXCLUDES(snapshot_mutex) {
    MutexLock lock(snapshot_mutex);
    return hin;
  }

  void Cleanup() NETOUT_EXCLUDES(dispatch_mutex) {
    StopDispatcher();
    for (auto& [fd, session] : sessions_by_fd) ::close(fd);
    sessions_by_fd.clear();
    sessions_by_id.clear();
    if (listen_fd >= 0) {
      ::close(listen_fd);
      listen_fd = -1;
    }
    if (wake_read_fd >= 0) {
      ::close(wake_read_fd);
      wake_read_fd = -1;
    }
    if (wake_write_fd >= 0) {
      ::close(wake_write_fd);
      wake_write_fd = -1;
    }
  }

  void StopDispatcher() NETOUT_EXCLUDES(dispatch_mutex) {
    {
      MutexLock lock(dispatch_mutex);
      dispatcher_stop = true;
    }
    dispatch_cv.NotifyAll();
    if (dispatcher.joinable()) dispatcher.join();
  }

  // ---------------------------------------------------------------
  // Startup

  Status Start() {
    if (started) return Status::FailedPrecondition("server already started");

    shed_backlog_effective = options.shed_backlog != 0
                                 ? options.shed_backlog
                                 : 4 * std::max<std::size_t>(1, options.num_threads);
    max_backlog_effective = options.max_backlog != 0
                                ? options.max_backlog
                                : 32 * std::max<std::size_t>(1, options.num_threads);
    if (max_backlog_effective < shed_backlog_effective) {
      max_backlog_effective = shed_backlog_effective;
    }

    // Per-request admission control replaces the engine-wide limits:
    // limits flow through the chained request tokens only, so two
    // sessions with different deadlines coexist in one merged batch.
    engine_options.exec.num_threads = 1;
    engine_options.exec.stop_policy = StopPolicy::kPartial;
    engine_options.exec.timeout_millis = -1;
    engine_options.exec.memory_budget_bytes = 0;
    BatchOptions batch_options;
    batch_options.merge_plans = options.merge_batches;
    runner = std::make_unique<BatchRunner>(CurrentSnapshot(), engine_options,
                                           options.num_threads, batch_options);

    int pipe_fds[2];
    if (::pipe2(pipe_fds, O_CLOEXEC | O_NONBLOCK) != 0) {
      return ErrnoStatus("pipe2");
    }
    wake_read_fd = pipe_fds[0];
    wake_write_fd = pipe_fds[1];

    listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                         0);
    if (listen_fd < 0) return ErrnoStatus("socket");
    int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options.port);
    if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
      return Status::InvalidArgument("bad listen address '" + options.host +
                                     "'");
    }
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return ErrnoStatus("bind " + options.host + ":" +
                         std::to_string(options.port));
    }
    if (::listen(listen_fd, 128) != 0) return ErrnoStatus("listen");

    sockaddr_in bound;
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound),
                      &bound_len) != 0) {
      return ErrnoStatus("getsockname");
    }
    bound_port = ntohs(bound.sin_port);

    start_time = Clock::now();
    dispatcher = std::thread([this] { DispatcherLoop(); });
    started = true;
    return Status::OK();
  }

  // ---------------------------------------------------------------
  // Dispatcher thread: drains the pending queue as one batch per pass,
  // so natural batching emerges under load (the deeper the backlog, the
  // more cross-request sharing the merged plan gets).

  void DispatcherLoop() NETOUT_EXCLUDES(dispatch_mutex, completion_mutex) {
    for (;;) {
      std::vector<PendingRequest> batch;
      {
        MutexLock lock(dispatch_mutex);
        while (!dispatcher_stop && pending.empty()) {
          dispatch_cv.Wait(dispatch_mutex);
        }
        if (pending.empty()) {
          if (dispatcher_stop) return;
          continue;
        }
        batch.reserve(pending.size());
        while (!pending.empty()) {
          batch.push_back(std::move(pending.front()));
          pending.pop_front();
        }
      }
      counters.batches.fetch_add(1, std::memory_order_relaxed);

      // Segment the drained batch into maximal runs of queries and runs
      // of mutations, preserving order. A query run executes against
      // one snapshot; a mutation run becomes one commit (one epoch)
      // published before the next query run — the serialization the
      // delta-maintained indexes require, with zero extra locking.
      std::vector<Completion> done;
      done.reserve(batch.size());
      std::size_t begin = 0;
      while (begin < batch.size()) {
        const bool mutation = IsMutationOp(batch[begin].request.op);
        std::size_t end = begin;
        while (end < batch.size() &&
               IsMutationOp(batch[end].request.op) == mutation) {
          ++end;
        }
        if (mutation) {
          RunMutationSegment(batch, begin, end, &done);
        } else {
          RunQuerySegment(batch, begin, end, &done);
        }
        begin = end;
      }
      {
        MutexLock lock(completion_mutex);
        completions.insert(completions.end(),
                           std::make_move_iterator(done.begin()),
                           std::make_move_iterator(done.end()));
      }
      Wake();
    }
  }

  void RunQuerySegment(std::vector<PendingRequest>& batch, std::size_t begin,
                       std::size_t end, std::vector<Completion>* done)
      NETOUT_EXCLUDES(snapshot_mutex) {
    const HinPtr snapshot = CurrentSnapshot();
    std::vector<BatchQuery> queries;
    queries.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      queries.push_back(BatchQuery{batch[i].request.query,
                                   batch[i].token.get()});
    }
    std::vector<BatchOutcome> outcomes = runner->Run(queries);

    const Clock::time_point now = Clock::now();
    for (std::size_t i = begin; i < end; ++i) {
      PendingRequest& request = batch[i];
      BatchOutcome& outcome = outcomes[i - begin];
      const std::uint64_t latency_nanos = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              now - request.received)
              .count());
      counters.latency.Record(latency_nanos);

      Completion completion;
      completion.session_id = request.session_id;
      if (outcome.status.ok()) {
        counters.queries_ok.fetch_add(1, std::memory_order_relaxed);
        if (outcome.result.degraded) {
          counters.queries_degraded.fetch_add(1, std::memory_order_relaxed);
        }
        if (request.shed) {
          counters.queries_shed.fetch_add(1, std::memory_order_relaxed);
        }
        counters.plan_ops_executed.fetch_add(
            outcome.result.plan_ops.size(), std::memory_order_relaxed);
        counters.vectors_materialized.fetch_add(
            outcome.result.stats.vectors_materialized,
            std::memory_order_relaxed);
        counters.vectors_reused.fetch_add(
            outcome.result.stats.vectors_reused, std::memory_order_relaxed);
        completion.payload = BuildQueryResponse(
            *snapshot, request.request, outcome.result, request.shed,
            NanosToMillis(latency_nanos));
      } else {
        counters.queries_error.fetch_add(1, std::memory_order_relaxed);
        completion.payload =
            BuildErrorResponse(&request.request, outcome.status);
      }
      done->push_back(std::move(completion));
    }
  }

  Status StageMutation(const Request& request) {
    switch (request.op) {
      case RequestOp::kAddVertex:
        return mutations.graph
            ->AddVertex(request.vertex_type, request.vertex_name)
            .status();
      case RequestOp::kAddEdge:
        return mutations.graph->AddEdge(
            request.edge_type, request.src_name, request.dst_name,
            static_cast<std::uint32_t>(request.count),
            /*create_vertices=*/true);
      case RequestOp::kDeleteEdge:
        return mutations.graph->DeleteEdge(request.edge_type,
                                           request.src_name,
                                           request.dst_name);
      default:
        return Status::Internal("not a mutation op");
    }
  }

  void RunMutationSegment(std::vector<PendingRequest>& batch,
                          std::size_t begin, std::size_t end,
                          std::vector<Completion>* done)
      NETOUT_EXCLUDES(snapshot_mutex) {
    // Stage every op eagerly (bad ops are rejected individually and
    // never staged), then fold the survivors into one commit.
    std::vector<Status> staged(end - begin);
    bool any_staged = false;
    for (std::size_t i = begin; i < end; ++i) {
      staged[i - begin] = StageMutation(batch[i].request);
      any_staged |= staged[i - begin].ok();
    }

    Status commit_failure;
    std::uint64_t epoch = 0;
    if (any_staged) {
      Result<CommitResult> committed = mutations.graph->Commit();
      if (committed.ok()) {
        epoch = committed.value().snapshot.epoch;
        PublishSnapshot(committed.value());
      } else {
        commit_failure = committed.status();
      }
    }

    const Clock::time_point now = Clock::now();
    for (std::size_t i = begin; i < end; ++i) {
      PendingRequest& request = batch[i];
      counters.latency.Record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              now - request.received)
              .count()));
      Completion completion;
      completion.session_id = request.session_id;
      const Status& failure =
          staged[i - begin].ok() ? commit_failure : staged[i - begin];
      if (failure.ok()) {
        counters.mutations_ok.fetch_add(1, std::memory_order_relaxed);
        completion.payload = BuildMutationResponse(request.request, epoch);
      } else {
        counters.mutations_error.fetch_add(1, std::memory_order_relaxed);
        completion.payload = BuildErrorResponse(&request.request, failure);
      }
      done->push_back(std::move(completion));
    }
  }

  /// Publishes a committed epoch: patches the delta-maintained indexes,
  /// invalidates affected cache rows, and swaps the snapshot the next
  /// query segment (and admin payloads) will see. Runs on the
  /// dispatcher thread between segments, which is exactly the
  /// no-concurrent-index-readers window ApplyDelta requires.
  void PublishSnapshot(const CommitResult& committed)
      NETOUT_EXCLUDES(snapshot_mutex) {
    const Hin& after = *committed.snapshot.hin;
    const AffectedRows affected =
        AffectedTwoStepRows(after, committed.summary);
    std::uint64_t patched = 0;
    if (mutations.pm != nullptr) {
      const std::uint64_t before = mutations.pm->rows_patched();
      if (!mutations.pm->ApplyDelta(after, affected).ok()) {
        // The PM epoch stays behind, so its LookupAt guard routes
        // readers to traversal fallback — slower, never wrong.
        counters.index_patch_failures.fetch_add(1, std::memory_order_relaxed);
      }
      patched += mutations.pm->rows_patched() - before;
    }
    if (mutations.spm != nullptr) {
      const std::uint64_t before = mutations.spm->rows_patched();
      if (!mutations.spm->ApplyDelta(after, affected).ok()) {
        counters.index_patch_failures.fetch_add(1, std::memory_order_relaxed);
      }
      patched += mutations.spm->rows_patched() - before;
    }
    if (mutations.cache != nullptr) {
      mutations.cache->BeginEpoch(committed.snapshot.epoch, affected);
    }
    runner->SetSnapshot(committed.snapshot.hin);
    {
      MutexLock lock(snapshot_mutex);
      hin = committed.snapshot.hin;
    }
    counters.epochs_committed.fetch_add(1, std::memory_order_relaxed);
    counters.graph_epoch.store(committed.snapshot.epoch,
                               std::memory_order_relaxed);
    counters.vertices_added.fetch_add(committed.summary.added_vertices.size(),
                                      std::memory_order_relaxed);
    counters.vertices_deleted.fetch_add(committed.summary.vertices_deleted,
                                        std::memory_order_relaxed);
    counters.edges_added.fetch_add(committed.summary.edges_added,
                                   std::memory_order_relaxed);
    counters.edges_deleted.fetch_add(committed.summary.edges_deleted,
                                     std::memory_order_relaxed);
    counters.index_rows_patched.fetch_add(patched, std::memory_order_relaxed);
  }

  /// Async-signal-safe: one atomic store + one write(). The poll loop
  /// wakes on the pipe byte; a full pipe is fine, the wakeup is level
  /// semantics (something already pending).
  void Wake() {
    const char byte = 0;
    [[maybe_unused]] ssize_t rc = ::write(wake_write_fd, &byte, 1);
  }

  void RequestShutdown() {
    shutdown_requested.store(true, std::memory_order_release);
    Wake();
  }

  // ---------------------------------------------------------------
  // Poll loop

  Status Serve() NETOUT_EXCLUDES(dispatch_mutex, completion_mutex) {
    if (!started) {
      return Status::FailedPrecondition("Serve() requires Start()");
    }
    std::vector<pollfd> fds;
    std::vector<int> session_fds;
    std::vector<std::uint64_t> session_ids;
    for (;;) {
      fds.clear();
      session_fds.clear();
      session_ids.clear();
      fds.push_back(pollfd{wake_read_fd, POLLIN, 0});
      const bool accepting = listen_fd >= 0;
      if (accepting) fds.push_back(pollfd{listen_fd, POLLIN, 0});
      for (const auto& [fd, session] : sessions_by_fd) {
        short events = 0;
        if (!session->read_closed && !session->close_after_flush) {
          events |= POLLIN;
        }
        if (session->out_offset < session->out.size()) events |= POLLOUT;
        fds.push_back(pollfd{fd, events, 0});
        session_fds.push_back(fd);
        session_ids.push_back(session->id);
      }

      const int rc = ::poll(fds.data(), fds.size(), /*timeout_ms=*/200);
      if (rc < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("poll");
      }

      if (fds[0].revents != 0) DrainWakePipe();
      if (shutdown_requested.load(std::memory_order_acquire) && !draining) {
        BeginDrain();
      }
      DeliverCompletions();
      if (accepting && listen_fd >= 0 && fds[1].revents != 0) AcceptNew();

      const std::size_t base = accepting ? 2 : 1;
      for (std::size_t i = 0; i < session_fds.size(); ++i) {
        const int fd = session_fds[i];
        const short revents = fds[base + i].revents;
        if (revents == 0) continue;
        auto it = sessions_by_fd.find(fd);
        if (it == sessions_by_fd.end()) continue;  // closed this pass
        // An fd number can be reused within one pass (close + accept);
        // the id check keeps a dead connection's revents from landing
        // on the newcomer.
        if (it->second->id != session_ids[i]) continue;
        HandleSessionEvents(it->second.get(), revents);
      }

      SweepClosable();

      if (draining) {
        // Grace period: a drain must terminate even when a peer never
        // reads its final responses.
        const bool expired =
            Clock::now() - drain_started > std::chrono::seconds(5);
        if (expired) ForceCloseAll();
        if (sessions_by_fd.empty()) break;
      }
    }
    StopDispatcher();
    // Late completions have no readers anymore; drop them.
    {
      MutexLock lock(completion_mutex);
      completions.clear();
    }
    return Status::OK();
  }

  void DrainWakePipe() {
    char buf[256];
    while (::read(wake_read_fd, buf, sizeof(buf)) > 0) {
    }
  }

  void BeginDrain() NETOUT_EXCLUDES(dispatch_mutex) {
    draining = true;
    drain_started = Clock::now();
    if (listen_fd >= 0) {
      ::close(listen_fd);
      listen_fd = -1;
    }
    // In-flight queries resolve as degraded partials (kPartial policy);
    // queued-but-unstarted ones resolve immediately the same way.
    drain_token.RequestCancel();
    {
      MutexLock lock(dispatch_mutex);
      dispatcher_stop = true;
    }
    dispatch_cv.NotifyAll();
  }

  void AcceptNew() {
    for (;;) {
      const int fd =
          ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN or transient accept error: retry next pass
      }
      if (sessions_by_fd.size() >= options.max_sessions) {
        counters.sessions_refused.fetch_add(1, std::memory_order_relaxed);
        const std::string refusal = BuildErrorResponse(
            nullptr,
            Status::ResourceExhausted("session limit reached (" +
                                      std::to_string(options.max_sessions) +
                                      ")"));
        // Best effort: the peer is being dropped either way.
        [[maybe_unused]] ssize_t rc =
            ::send(fd, refusal.data(), refusal.size(), MSG_NOSIGNAL);
        ::close(fd);
        continue;
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto session = std::make_unique<Session>(options.limits.max_line_bytes);
      session->fd = fd;
      session->id = next_session_id++;
      sessions_by_id[session->id] = session.get();
      sessions_by_fd[fd] = std::move(session);
      counters.sessions_opened.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void HandleSessionEvents(Session* session, short revents) {
    if ((revents & (POLLERR | POLLNVAL)) != 0) {
      AbortSession(session);
      return;
    }
    if ((revents & (POLLIN | POLLHUP)) != 0 && !session->read_closed) {
      if (!ReadFromSession(session)) return;  // session aborted
    }
    if ((revents & POLLOUT) != 0) {
      if (!FlushWrites(session)) return;
    }
  }

  /// Returns false when the session was aborted.
  bool ReadFromSession(Session* session) {
    char buf[64 * 1024];
    for (;;) {
      const ssize_t n = ::recv(session->fd, buf, sizeof(buf), 0);
      if (n > 0) {
        counters.bytes_read.fetch_add(static_cast<std::uint64_t>(n),
                                      std::memory_order_relaxed);
        Status appended =
            session->lines.Append(std::string_view(buf, static_cast<std::size_t>(n)));
        if (!appended.ok()) {
          // Line overflow: framing is unrecoverable. One error line,
          // then close.
          counters.protocol_errors.fetch_add(1, std::memory_order_relaxed);
          counters.sessions_overflowed.fetch_add(1, std::memory_order_relaxed);
          Enqueue(session, BuildErrorResponse(nullptr, appended));
          session->read_closed = true;
          session->close_after_flush = true;
          return true;
        }
        std::string line;
        while (session->lines.NextLine(&line)) {
          HandleLine(session, line);
          if (session->close_after_flush) break;
        }
        if (session->close_after_flush) return true;
        continue;
      }
      if (n == 0) {  // half-close: finish in-flight work, then close
        session->read_closed = true;
        return true;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      AbortSession(session);
      return false;
    }
  }

  void HandleLine(Session* session, const std::string& line) {
    counters.requests_received.fetch_add(1, std::memory_order_relaxed);
    Result<Request> parsed = ParseRequest(line, options.limits);
    if (!parsed.ok()) {
      // Framing is still intact (the line terminated), so the session
      // survives a malformed request.
      counters.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      Enqueue(session, BuildErrorResponse(nullptr, parsed.status()));
      return;
    }
    Request request = std::move(parsed).value();
    switch (request.op) {
      case RequestOp::kPing:
        Enqueue(session, BuildPingResponse(request));
        return;
      case RequestOp::kStats:
        Enqueue(session, BuildObjectResponse(request, "stats", StatsJson()));
        return;
      case RequestOp::kConfig:
        Enqueue(session, BuildObjectResponse(request, "config", ConfigJson()));
        return;
      case RequestOp::kShutdown:
        if (!options.allow_remote_shutdown) {
          Enqueue(session,
                  BuildErrorResponse(&request, Status::FailedPrecondition(
                                                   "remote shutdown disabled")));
          return;
        }
        Enqueue(session, BuildObjectResponse(request, "draining", "true"));
        shutdown_requested.store(true, std::memory_order_release);
        return;
      case RequestOp::kQuery:
        AdmitQuery(session, std::move(request));
        return;
      case RequestOp::kAddVertex:
      case RequestOp::kAddEdge:
      case RequestOp::kDeleteEdge:
        AdmitMutation(session, std::move(request));
        return;
    }
  }

  /// Mutations ride the dispatcher queue like queries (that ordering IS
  /// the consistency story) but carry no control token: a commit is
  /// quick, all-or-nothing, and must never be half-cancelled.
  void AdmitMutation(Session* session, Request request)
      NETOUT_EXCLUDES(dispatch_mutex) {
    if (mutations.graph == nullptr) {
      counters.mutations_error.fetch_add(1, std::memory_order_relaxed);
      Enqueue(session,
              BuildErrorResponse(
                  &request, Status::FailedPrecondition(
                                "server is read-only (started without a "
                                "mutation context)")));
      return;
    }
    if (draining) {
      counters.mutations_error.fetch_add(1, std::memory_order_relaxed);
      Enqueue(session, BuildErrorResponse(
                           &request,
                           Status::FailedPrecondition("server is draining")));
      return;
    }
    std::size_t backlog;
    {
      MutexLock lock(dispatch_mutex);
      backlog = pending.size();
    }
    if (backlog >= max_backlog_effective) {
      counters.mutations_error.fetch_add(1, std::memory_order_relaxed);
      Enqueue(session,
              BuildErrorResponse(
                  &request, Status::ResourceExhausted(
                                "backlog full (" +
                                std::to_string(max_backlog_effective) +
                                " queued); retry later")));
      return;
    }
    PendingRequest pending_request;
    pending_request.session_id = session->id;
    pending_request.received = Clock::now();
    pending_request.request = std::move(request);
    session->inflight++;
    {
      MutexLock lock(dispatch_mutex);
      pending.push_back(std::move(pending_request));
    }
    dispatch_cv.NotifyOne();
  }

  void AdmitQuery(Session* session, Request request)
      NETOUT_EXCLUDES(dispatch_mutex) {
    if (draining) {
      counters.queries_refused.fetch_add(1, std::memory_order_relaxed);
      Enqueue(session, BuildErrorResponse(
                           &request,
                           Status::FailedPrecondition("server is draining")));
      return;
    }
    std::size_t backlog;
    {
      MutexLock lock(dispatch_mutex);
      backlog = pending.size();
    }
    if (backlog >= max_backlog_effective) {
      counters.queries_refused.fetch_add(1, std::memory_order_relaxed);
      Enqueue(session,
              BuildErrorResponse(
                  &request, Status::ResourceExhausted(
                                "backlog full (" +
                                std::to_string(max_backlog_effective) +
                                " queued); retry later")));
      return;
    }
    const bool shed = backlog >= shed_backlog_effective;

    // Effective deadline: the server default is a ceiling the request
    // may lower but not raise; shedding tightens it further. Armed from
    // admission, so queue wait counts against it (end-to-end deadline).
    std::int64_t timeout = request.timeout_millis;
    if (options.default_timeout_millis >= 0) {
      timeout = timeout < 0 ? options.default_timeout_millis
                            : std::min(timeout, options.default_timeout_millis);
    }
    if (shed) {
      timeout = timeout < 0 ? options.shed_timeout_millis
                            : std::min(timeout, options.shed_timeout_millis);
    }

    // Budget: the global budget divided across worker concurrency forms
    // the per-request ceiling.
    std::size_t budget = 0;
    if (options.memory_budget_bytes != 0) {
      budget = options.memory_budget_bytes /
               std::max<std::size_t>(1, options.num_threads);
    }
    if (request.memory_budget_bytes >= 0) {
      const auto requested =
          static_cast<std::size_t>(request.memory_budget_bytes);
      budget = budget == 0 ? requested : std::min(budget, requested);
      if (budget == 0) budget = 1;  // "0 MB" means effectively nothing
    }

    PendingRequest pending_request;
    pending_request.session_id = session->id;
    pending_request.shed = shed;
    pending_request.token =
        std::make_unique<CancellationToken>(timeout, budget, &drain_token);
    pending_request.received = Clock::now();
    pending_request.request = std::move(request);

    session->inflight++;
    {
      MutexLock lock(dispatch_mutex);
      pending.push_back(std::move(pending_request));
    }
    dispatch_cv.NotifyOne();
  }

  void DeliverCompletions() NETOUT_EXCLUDES(completion_mutex) {
    std::vector<Completion> done;
    {
      MutexLock lock(completion_mutex);
      done.swap(completions);
    }
    for (Completion& completion : done) {
      auto it = sessions_by_id.find(completion.session_id);
      if (it == sessions_by_id.end()) continue;  // session died first
      Session* session = it->second;
      if (session->inflight > 0) session->inflight--;
      Enqueue(session, std::move(completion.payload));
    }
  }

  /// Marks a session unusable without freeing it: pending output is
  /// dropped and SweepClosable reaps it at the end of the poll pass.
  /// Never destroys the Session, so callers holding the pointer mid-pass
  /// (ReadFromSession's line loop, DeliverCompletions) stay safe.
  void AbortSession(Session* session) {
    session->dead = true;
    session->read_closed = true;
    session->close_after_flush = true;
    session->out.clear();
    session->out_offset = 0;
  }

  void Enqueue(Session* session, std::string payload) {
    if (session->dead) return;  // output already dropped; reap pending
    session->out += payload;
    if (session->out.size() - session->out_offset >
        options.max_session_write_bytes) {
      // The reader is slower than its own query stream; buffering
      // without bound would defeat the memory budget, so drop it.
      counters.sessions_overflowed.fetch_add(1, std::memory_order_relaxed);
      AbortSession(session);
      return;
    }
    FlushWrites(session);  // opportunistic; the poll loop retries
  }

  /// Returns false when the session was aborted (it stays allocated
  /// until SweepClosable; only the sweep ever frees a session).
  bool FlushWrites(Session* session) {
    if (session->dead) return false;
    while (session->out_offset < session->out.size()) {
      const ssize_t n =
          ::send(session->fd, session->out.data() + session->out_offset,
                 session->out.size() - session->out_offset, MSG_NOSIGNAL);
      if (n > 0) {
        counters.bytes_written.fetch_add(static_cast<std::uint64_t>(n),
                                         std::memory_order_relaxed);
        session->out_offset += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      AbortSession(session);  // EPIPE/ECONNRESET and friends
      return false;
    }
    if (session->out_offset == session->out.size()) {
      session->out.clear();
      session->out_offset = 0;
    } else if (session->out_offset > (std::size_t{1} << 18)) {
      session->out.erase(0, session->out_offset);
      session->out_offset = 0;
    }
    return true;
  }

  void SweepClosable() {
    std::vector<Session*> doomed;
    for (const auto& [fd, session] : sessions_by_fd) {
      if (session->dead) {
        doomed.push_back(session.get());
        continue;
      }
      const bool flushed = session->out_offset == session->out.size();
      if (!flushed) continue;
      if (session->close_after_flush ||
          (session->read_closed && session->inflight == 0) ||
          (draining && session->inflight == 0)) {
        doomed.push_back(session.get());
      }
    }
    for (Session* session : doomed) CloseSession(session);
  }

  void ForceCloseAll() {
    std::vector<Session*> doomed;
    doomed.reserve(sessions_by_fd.size());
    for (const auto& [fd, session] : sessions_by_fd) {
      doomed.push_back(session.get());
    }
    for (Session* session : doomed) CloseSession(session);
  }

  /// Frees the session. Only SweepClosable/ForceCloseAll/Cleanup may
  /// call this; mid-pass failure paths go through AbortSession so live
  /// Session pointers are never invalidated under a caller.
  void CloseSession(Session* session) {
    counters.sessions_closed.fetch_add(1, std::memory_order_relaxed);
    sessions_by_id.erase(session->id);
    const int fd = session->fd;
    ::close(fd);
    sessions_by_fd.erase(fd);  // frees `session`
  }

  // ---------------------------------------------------------------
  // Admin payloads

  ServerStatsSnapshot Snapshot() const {
    ServerStatsSnapshot snap;
    snap.sessions_opened =
        counters.sessions_opened.load(std::memory_order_relaxed);
    snap.sessions_closed =
        counters.sessions_closed.load(std::memory_order_relaxed);
    snap.sessions_refused =
        counters.sessions_refused.load(std::memory_order_relaxed);
    snap.sessions_overflowed =
        counters.sessions_overflowed.load(std::memory_order_relaxed);
    snap.requests_received =
        counters.requests_received.load(std::memory_order_relaxed);
    snap.protocol_errors =
        counters.protocol_errors.load(std::memory_order_relaxed);
    snap.queries_ok = counters.queries_ok.load(std::memory_order_relaxed);
    snap.queries_error = counters.queries_error.load(std::memory_order_relaxed);
    snap.queries_degraded =
        counters.queries_degraded.load(std::memory_order_relaxed);
    snap.queries_shed = counters.queries_shed.load(std::memory_order_relaxed);
    snap.queries_refused =
        counters.queries_refused.load(std::memory_order_relaxed);
    snap.batches = counters.batches.load(std::memory_order_relaxed);
    snap.mutations_ok = counters.mutations_ok.load(std::memory_order_relaxed);
    snap.mutations_error =
        counters.mutations_error.load(std::memory_order_relaxed);
    snap.epochs_committed =
        counters.epochs_committed.load(std::memory_order_relaxed);
    snap.vertices_added =
        counters.vertices_added.load(std::memory_order_relaxed);
    snap.vertices_deleted =
        counters.vertices_deleted.load(std::memory_order_relaxed);
    snap.edges_added = counters.edges_added.load(std::memory_order_relaxed);
    snap.edges_deleted =
        counters.edges_deleted.load(std::memory_order_relaxed);
    snap.index_rows_patched =
        counters.index_rows_patched.load(std::memory_order_relaxed);
    snap.index_patch_failures =
        counters.index_patch_failures.load(std::memory_order_relaxed);
    snap.graph_epoch = counters.graph_epoch.load(std::memory_order_relaxed);
    // The segment store lives on the root graph, which every published
    // overlay shares, so any snapshot reaches the same counters.
    if (const SegmentStore* store = CurrentSnapshot()->shard_store()) {
      const ShardedStorageStats storage = store->Stats();
      snap.storage_sharded = true;
      snap.storage_budget_bytes = storage.budget_bytes;
      snap.storage_mapped_bytes = storage.mapped_bytes;
      snap.storage_resident_bytes = storage.resident_bytes;
      snap.storage_segments = storage.segments;
      snap.storage_resident_segments = storage.resident_segments;
      snap.storage_faults = storage.faults;
      snap.storage_evictions = storage.evictions;
    }
    snap.bytes_read = counters.bytes_read.load(std::memory_order_relaxed);
    snap.bytes_written = counters.bytes_written.load(std::memory_order_relaxed);
    snap.latency_count =
        counters.latency.count.load(std::memory_order_relaxed);
    if (snap.latency_count > 0) {
      snap.latency_mean_ms =
          NanosToMillis(
              counters.latency.total_nanos.load(std::memory_order_relaxed)) /
          static_cast<double>(snap.latency_count);
    }
    snap.latency_p50_ms = counters.latency.QuantileMillis(0.50);
    snap.latency_p90_ms = counters.latency.QuantileMillis(0.90);
    snap.latency_p99_ms = counters.latency.QuantileMillis(0.99);
    snap.latency_max_ms = NanosToMillis(
        counters.latency.max_nanos.load(std::memory_order_relaxed));
    return snap;
  }

  std::string StatsJson() const {
    const ServerStatsSnapshot snap = Snapshot();
    JsonWriter json;
    json.BeginObject();
    json.Key("uptime_seconds");
    json.Number(std::chrono::duration_cast<std::chrono::duration<double>>(
                    Clock::now() - start_time)
                    .count());
    json.Key("sessions");
    json.BeginObject();
    json.Key("opened");
    json.Uint(snap.sessions_opened);
    json.Key("closed");
    json.Uint(snap.sessions_closed);
    json.Key("refused");
    json.Uint(snap.sessions_refused);
    json.Key("overflowed");
    json.Uint(snap.sessions_overflowed);
    json.Key("open");
    json.Uint(snap.sessions_opened - snap.sessions_closed);
    json.EndObject();
    json.Key("requests");
    json.BeginObject();
    json.Key("received");
    json.Uint(snap.requests_received);
    json.Key("protocol_errors");
    json.Uint(snap.protocol_errors);
    json.EndObject();
    json.Key("queries");
    json.BeginObject();
    json.Key("ok");
    json.Uint(snap.queries_ok);
    json.Key("error");
    json.Uint(snap.queries_error);
    json.Key("degraded");
    json.Uint(snap.queries_degraded);
    json.Key("shed");
    json.Uint(snap.queries_shed);
    json.Key("refused");
    json.Uint(snap.queries_refused);
    json.Key("batches");
    json.Uint(snap.batches);
    json.EndObject();
    json.Key("graph");
    json.BeginObject();
    json.Key("epoch");
    json.Uint(snap.graph_epoch);
    json.Key("read_only");
    json.Bool(mutations.graph == nullptr);
    json.Key("mutations_ok");
    json.Uint(snap.mutations_ok);
    json.Key("mutations_error");
    json.Uint(snap.mutations_error);
    json.Key("epochs_committed");
    json.Uint(snap.epochs_committed);
    json.Key("vertices_added");
    json.Uint(snap.vertices_added);
    json.Key("vertices_deleted");
    json.Uint(snap.vertices_deleted);
    json.Key("edges_added");
    json.Uint(snap.edges_added);
    json.Key("edges_deleted");
    json.Uint(snap.edges_deleted);
    json.Key("index_rows_patched");
    json.Uint(snap.index_rows_patched);
    json.Key("index_patch_failures");
    json.Uint(snap.index_patch_failures);
    json.EndObject();
    json.Key("storage");
    json.BeginObject();
    json.Key("sharded");
    json.Bool(snap.storage_sharded);
    if (snap.storage_sharded) {
      json.Key("budget_bytes");
      json.Uint(snap.storage_budget_bytes);
      json.Key("mapped_bytes");
      json.Uint(snap.storage_mapped_bytes);
      json.Key("resident_bytes");
      json.Uint(snap.storage_resident_bytes);
      json.Key("segments");
      json.Uint(snap.storage_segments);
      json.Key("resident_segments");
      json.Uint(snap.storage_resident_segments);
      json.Key("faults");
      json.Uint(snap.storage_faults);
      json.Key("evictions");
      json.Uint(snap.storage_evictions);
    }
    json.EndObject();
    json.Key("plan");
    json.BeginObject();
    json.Key("ops_executed");
    json.Uint(counters.plan_ops_executed.load(std::memory_order_relaxed));
    json.Key("vectors_materialized");
    json.Uint(counters.vectors_materialized.load(std::memory_order_relaxed));
    json.Key("vectors_reused");
    json.Uint(counters.vectors_reused.load(std::memory_order_relaxed));
    json.EndObject();
    if (cache != nullptr) {
      const CachedIndex::Stats cache_stats = cache->stats();
      json.Key("cache");
      json.BeginObject();
      json.Key("hits");
      json.Uint(cache_stats.hits);
      json.Key("misses");
      json.Uint(cache_stats.misses);
      json.Key("insertions");
      json.Uint(cache_stats.insertions);
      json.Key("evictions");
      json.Uint(cache_stats.evictions);
      json.Key("rejected_too_large");
      json.Uint(cache_stats.rejected_too_large);
      json.Key("invalidated");
      json.Uint(cache_stats.invalidated);
      json.Key("stale_lookups");
      json.Uint(cache_stats.stale_lookups);
      json.Key("stale_inserts");
      json.Uint(cache_stats.stale_inserts);
      json.Key("entries");
      json.Uint(cache->num_entries());
      json.Key("bytes");
      json.Uint(cache->MemoryBytes());
      const std::uint64_t lookups = cache_stats.hits + cache_stats.misses;
      json.Key("hit_rate");
      json.Number(lookups == 0
                      ? 0.0
                      : static_cast<double>(cache_stats.hits) /
                            static_cast<double>(lookups));
      json.EndObject();
    }
    json.Key("io");
    json.BeginObject();
    json.Key("bytes_read");
    json.Uint(snap.bytes_read);
    json.Key("bytes_written");
    json.Uint(snap.bytes_written);
    json.EndObject();
    json.Key("latency_ms");
    json.BeginObject();
    json.Key("count");
    json.Uint(snap.latency_count);
    json.Key("mean");
    json.Number(snap.latency_mean_ms);
    json.Key("p50");
    json.Number(snap.latency_p50_ms);
    json.Key("p90");
    json.Number(snap.latency_p90_ms);
    json.Key("p99");
    json.Number(snap.latency_p99_ms);
    json.Key("max");
    json.Number(snap.latency_max_ms);
    json.EndObject();
    json.EndObject();
    return std::move(json).Take();
  }

  std::string ConfigJson() const {
    JsonWriter json;
    json.BeginObject();
    json.Key("host");
    json.String(options.host);
    json.Key("port");
    json.Uint(bound_port);
    json.Key("num_threads");
    json.Uint(options.num_threads);
    json.Key("merge_batches");
    json.Bool(options.merge_batches);
    json.Key("max_sessions");
    json.Uint(options.max_sessions);
    json.Key("max_line_bytes");
    json.Uint(options.limits.max_line_bytes);
    json.Key("default_timeout_ms");
    json.Int(options.default_timeout_millis);
    json.Key("memory_budget_bytes");
    json.Uint(options.memory_budget_bytes);
    json.Key("shed_backlog");
    json.Uint(shed_backlog_effective);
    json.Key("shed_timeout_ms");
    json.Int(options.shed_timeout_millis);
    json.Key("max_backlog");
    json.Uint(max_backlog_effective);
    json.Key("allow_remote_shutdown");
    json.Bool(options.allow_remote_shutdown);
    json.Key("index");
    json.String(engine_options.index != nullptr ? engine_options.index->Name()
                                                : "none");
    json.Key("read_only");
    json.Bool(mutations.graph == nullptr);
    const HinPtr snapshot = CurrentSnapshot();
    json.Key("epoch");
    json.Uint(snapshot != nullptr ? snapshot->epoch() : 0);
    json.Key("vertices");
    json.Uint(snapshot != nullptr ? snapshot->TotalVertices() : 0);
    json.Key("edges");
    json.Uint(snapshot != nullptr ? snapshot->TotalEdges() : 0);
    json.EndObject();
    return std::move(json).Take();
  }
};

Server::Server(HinPtr hin, const EngineOptions& engine_options,
               const ServerOptions& options, const CachedIndex* cache,
               const MutationContext& mutations)
    : impl_(std::make_unique<Impl>()) {
  {
    MutexLock lock(impl_->snapshot_mutex);
    impl_->hin = std::move(hin);
  }
  impl_->engine_options = engine_options;
  impl_->options = options;
  impl_->cache = cache;
  impl_->mutations = mutations;
}

Server::~Server() = default;

Status Server::Start() { return impl_->Start(); }

Status Server::Serve() { return impl_->Serve(); }

void Server::RequestShutdown() { impl_->RequestShutdown(); }

std::uint16_t Server::port() const { return impl_->bound_port; }

ServerStatsSnapshot Server::stats() const { return impl_->Snapshot(); }

std::string Server::StatsJson() const { return impl_->StatsJson(); }

std::string Server::ConfigJson() const { return impl_->ConfigJson(); }

const CancellationToken& Server::drain_token() const {
  return impl_->drain_token;
}

}  // namespace netout
