#ifndef NETOUT_DATAGEN_WORKLOAD_H_
#define NETOUT_DATAGEN_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "graph/hin.h"

namespace netout {

/// The paper's Table 4 query templates. The "·" position is filled with
/// a randomly selected author name:
///   Q1: FIND OUTLIERS FROM author{·}.paper.author
///       JUDGED BY author.paper.venue TOP 10;
///   Q2: FIND OUTLIERS IN author{·}.paper.venue
///       JUDGED BY venue.paper.term TOP 10;
///   Q3: FIND OUTLIERS IN author{·}.paper.term
///       JUDGED BY term.paper.venue TOP 10;
enum class QueryTemplate : std::uint8_t { kQ1 = 0, kQ2 = 1, kQ3 = 2 };

const char* QueryTemplateName(QueryTemplate t);

/// Substitutes `author_name` into the template.
std::string InstantiateTemplate(QueryTemplate t, std::string_view author_name);

struct WorkloadConfig {
  std::size_t num_queries = 1000;
  std::uint64_t seed = 1234;
};

/// Generates a query set from one template by substituting authors
/// sampled uniformly (with replacement) from the network's author type —
/// the paper's "10,000 randomly selected authors" procedure, scaled by
/// `config.num_queries`.
Result<std::vector<std::string>> GenerateWorkload(
    const Hin& hin, std::string_view author_type_name, QueryTemplate t,
    const WorkloadConfig& config);

struct SkewedWorkloadConfig {
  std::size_t num_queries = 1000;
  std::uint64_t seed = 1234;
  /// Zipf exponent over anchor vertices: higher = the same few anchors
  /// recur more often (an analyst drilling into one neighborhood).
  double zipf_exponent = 1.1;
};

/// Like GenerateWorkload but anchors are Zipf-distributed, modeling the
/// skewed exploratory sessions that warm dynamic caches (see
/// index/cached_index.h and bench_ablation_cache).
Result<std::vector<std::string>> GenerateSkewedWorkload(
    const Hin& hin, std::string_view author_type_name, QueryTemplate t,
    const SkewedWorkloadConfig& config);

}  // namespace netout

#endif  // NETOUT_DATAGEN_WORKLOAD_H_
