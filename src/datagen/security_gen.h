#ifndef NETOUT_DATAGEN_SECURITY_GEN_H_
#define NETOUT_DATAGEN_SECURITY_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/hin.h"

namespace netout {

/// A second application domain for the framework (the paper was
/// co-sponsored by the Army Research Lab with network-security analysis
/// in mind): an intrusion-alert HIN with hosts, alerts, signatures and
/// users.
///
/// Schema: alert -> host (raised_on), alert -> signature (matches),
/// user -> host (logs_into). Hosts live in subnets whose baseline alert
/// traffic matches a subnet-typical signature profile; planted
/// compromised hosts additionally raise alerts against signatures
/// typical of a *different* subnet profile, making them query-detectable
/// via e.g.
///   FIND OUTLIERS FROM subnet-neighborhood JUDGED BY
///   host.alert.signature TOP k;
struct SecurityConfig {
  std::uint64_t seed = 7;
  std::size_t num_subnets = 5;
  std::size_t hosts_per_subnet = 60;
  std::size_t signatures_per_profile = 20;
  std::size_t users = 120;
  std::size_t alerts_per_host = 25;
  double signature_zipf = 0.9;
  std::size_t compromised_per_subnet = 2;
  std::size_t compromise_alerts = 30;
};

struct SecurityDataset {
  HinPtr hin;
  TypeId host_type = kInvalidTypeId;
  TypeId alert_type = kInvalidTypeId;
  TypeId signature_type = kInvalidTypeId;
  TypeId user_type = kInvalidTypeId;

  /// One gateway host per subnet (every subnet host shares a user with
  /// it, so "hosts of the gateway's users" approximates the subnet).
  std::vector<std::string> gateway_names;
  /// Ground truth: names of the planted compromised hosts.
  std::vector<std::string> compromised_names;
};

Result<SecurityDataset> GenerateSecurity(const SecurityConfig& config);

}  // namespace netout

#endif  // NETOUT_DATAGEN_SECURITY_GEN_H_
