#include "datagen/biblio_gen.h"

#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/random.h"
#include "graph/builder.h"

namespace netout {
namespace {

/// Working state threaded through the generation helpers.
struct GenState {
  GraphBuilder builder;
  TypeId author_type;
  TypeId paper_type;
  TypeId venue_type;
  TypeId term_type;
  EdgeTypeId writes;
  EdgeTypeId published_in;
  EdgeTypeId has_term;

  // Per area: vertex refs.
  std::vector<std::vector<VertexRef>> area_authors;  // [area][rank]
  std::vector<std::vector<VertexRef>> area_venues;
  std::vector<std::vector<VertexRef>> area_terms;
  std::vector<VertexRef> shared_terms;

  std::size_t paper_serial = 0;
};

Result<VertexRef> NewPaper(GenState* state) {
  return state->builder.AddVertex(
      state->paper_type, "paper_" + std::to_string(state->paper_serial++));
}

/// Emits one paper with the given author set (deduplicated), venue, and
/// terms (deduplicated).
Status EmitPaper(GenState* state, const std::vector<VertexRef>& authors,
                 VertexRef venue, const std::vector<VertexRef>& terms) {
  NETOUT_ASSIGN_OR_RETURN(VertexRef paper, NewPaper(state));
  std::unordered_set<LocalId> seen_authors;
  for (const VertexRef& author : authors) {
    if (!seen_authors.insert(author.local).second) continue;
    NETOUT_RETURN_IF_ERROR(
        state->builder.AddEdge(state->writes, author, paper));
  }
  NETOUT_RETURN_IF_ERROR(
      state->builder.AddEdge(state->published_in, paper, venue));
  std::unordered_set<LocalId> seen_terms;
  for (const VertexRef& term : terms) {
    if (!seen_terms.insert(term.local).second) continue;
    NETOUT_RETURN_IF_ERROR(
        state->builder.AddEdge(state->has_term, paper, term));
  }
  return Status::OK();
}

/// Draws `count` terms for a paper of `area`.
std::vector<VertexRef> DrawTerms(GenState* state, const BiblioConfig& config,
                                 std::size_t area, std::size_t count,
                                 const ZipfSampler& term_sampler,
                                 const ZipfSampler& shared_sampler,
                                 Rng* rng) {
  std::vector<VertexRef> terms;
  terms.reserve(count);
  for (std::size_t t = 0; t < count; ++t) {
    if (!state->shared_terms.empty() &&
        rng->NextBool(config.shared_term_prob)) {
      terms.push_back(state->shared_terms[shared_sampler.Sample(rng)]);
    } else {
      terms.push_back(state->area_terms[area][term_sampler.Sample(rng)]);
    }
  }
  return terms;
}

}  // namespace

Result<BiblioDataset> GenerateBiblio(const BiblioConfig& config) {
  if (config.num_areas == 0 || config.authors_per_area < 2 ||
      config.venues_per_area == 0 || config.terms_per_area == 0) {
    return Status::InvalidArgument(
        "biblio config needs >=1 area, >=2 authors/area, >=1 venue/area, "
        ">=1 term/area");
  }
  Rng rng(config.seed);
  GenState state;
  BiblioDataset dataset;

  NETOUT_ASSIGN_OR_RETURN(state.author_type,
                          state.builder.AddVertexType("author"));
  NETOUT_ASSIGN_OR_RETURN(state.paper_type,
                          state.builder.AddVertexType("paper"));
  NETOUT_ASSIGN_OR_RETURN(state.venue_type,
                          state.builder.AddVertexType("venue"));
  NETOUT_ASSIGN_OR_RETURN(state.term_type,
                          state.builder.AddVertexType("term"));
  NETOUT_ASSIGN_OR_RETURN(
      state.writes,
      state.builder.AddEdgeType("writes", state.author_type,
                                state.paper_type));
  NETOUT_ASSIGN_OR_RETURN(
      state.published_in,
      state.builder.AddEdgeType("published_in", state.paper_type,
                                state.venue_type));
  NETOUT_ASSIGN_OR_RETURN(
      state.has_term,
      state.builder.AddEdgeType("has_term", state.paper_type,
                                state.term_type));

  // ---- vertices -------------------------------------------------------
  state.area_authors.resize(config.num_areas);
  state.area_venues.resize(config.num_areas);
  state.area_terms.resize(config.num_areas);
  for (std::size_t a = 0; a < config.num_areas; ++a) {
    // Rank 0 is the area star (Zipf rank 0 = most productive).
    NETOUT_ASSIGN_OR_RETURN(
        VertexRef star, state.builder.AddVertex(
                            state.author_type, "star_" + std::to_string(a)));
    state.area_authors[a].push_back(star);
    dataset.star_names.push_back("star_" + std::to_string(a));
    for (std::size_t i = 1; i < config.authors_per_area; ++i) {
      NETOUT_ASSIGN_OR_RETURN(
          VertexRef author,
          state.builder.AddVertex(state.author_type,
                                  "author_" + std::to_string(a) + "_" +
                                      std::to_string(i)));
      state.area_authors[a].push_back(author);
    }
    for (std::size_t i = 0; i < config.venues_per_area; ++i) {
      NETOUT_ASSIGN_OR_RETURN(
          VertexRef venue,
          state.builder.AddVertex(state.venue_type,
                                  "venue_" + std::to_string(a) + "_" +
                                      std::to_string(i)));
      state.area_venues[a].push_back(venue);
    }
    for (std::size_t i = 0; i < config.terms_per_area; ++i) {
      NETOUT_ASSIGN_OR_RETURN(
          VertexRef term,
          state.builder.AddVertex(state.term_type,
                                  "term_" + std::to_string(a) + "_" +
                                      std::to_string(i)));
      state.area_terms[a].push_back(term);
    }
  }
  for (std::size_t i = 0; i < config.shared_terms; ++i) {
    NETOUT_ASSIGN_OR_RETURN(
        VertexRef term,
        state.builder.AddVertex(state.term_type,
                                "shared_term_" + std::to_string(i)));
    state.shared_terms.push_back(term);
  }

  const ZipfSampler author_sampler(config.authors_per_area,
                                   config.author_zipf);
  const ZipfSampler venue_sampler(config.venues_per_area, config.venue_zipf);
  const ZipfSampler term_sampler(config.terms_per_area, config.term_zipf);
  const ZipfSampler shared_sampler(std::max<std::size_t>(1,
                                                         config.shared_terms),
                                   config.term_zipf);

  // ---- regular papers -------------------------------------------------
  for (std::size_t a = 0; a < config.num_areas; ++a) {
    for (std::size_t p = 0; p < config.papers_per_area; ++p) {
      std::vector<VertexRef> authors;
      authors.push_back(state.area_authors[a][author_sampler.Sample(&rng)]);
      const int extra = rng.NextPoisson(config.extra_authors_lambda);
      for (int e = 0; e < extra; ++e) {
        if (config.num_areas > 1 &&
            rng.NextBool(config.cross_area_coauthor_prob)) {
          std::size_t other =
              rng.NextBounded(config.num_areas - 1);
          if (other >= a) ++other;
          authors.push_back(
              state.area_authors[other][author_sampler.Sample(&rng)]);
        } else {
          authors.push_back(
              state.area_authors[a][author_sampler.Sample(&rng)]);
        }
      }
      const VertexRef venue =
          state.area_venues[a][venue_sampler.Sample(&rng)];
      const std::size_t term_count =
          1 + static_cast<std::size_t>(
                  rng.NextPoisson(config.extra_terms_lambda));
      const std::vector<VertexRef> terms = DrawTerms(
          &state, config, a, term_count, term_sampler, shared_sampler, &rng);
      NETOUT_RETURN_IF_ERROR(EmitPaper(&state, authors, venue, terms));
    }
  }

  // ---- planted cross-community outliers -------------------------------
  for (std::size_t a = 0; a < config.num_areas; ++a) {
    for (std::size_t i = 0; i < config.planted_outliers_per_area; ++i) {
      const std::string name =
          "outlier_" + std::to_string(a) + "_" + std::to_string(i);
      NETOUT_ASSIGN_OR_RETURN(
          VertexRef outlier,
          state.builder.AddVertex(state.author_type, name));
      dataset.planted_outlier_names.push_back(name);

      // A couple of home-area papers WITH the star: this places the
      // outlier in the star's coauthor candidate set.
      for (int h = 0; h < 2; ++h) {
        std::vector<VertexRef> authors = {outlier, state.area_authors[a][0]};
        const VertexRef venue =
            state.area_venues[a][venue_sampler.Sample(&rng)];
        NETOUT_RETURN_IF_ERROR(EmitPaper(
            &state, authors, venue,
            DrawTerms(&state, config, a, 4, term_sampler, shared_sampler,
                      &rng)));
      }
      // The bulk of their work lives in a different area's *venues* with
      // that area's vocabulary, but co-authored with home-area people —
      // so only the venue/term profile deviates, not the collaboration
      // profile.
      if (config.num_areas > 1) {
        std::size_t b = rng.NextBounded(config.num_areas - 1);
        if (b >= a) ++b;
        for (std::size_t p = 0; p < config.planted_outlier_papers; ++p) {
          std::vector<VertexRef> authors = {outlier};
          const int extra = rng.NextPoisson(config.extra_authors_lambda);
          for (int e = 0; e < extra; ++e) {
            authors.push_back(
                state.area_authors[a][author_sampler.Sample(&rng)]);
          }
          const VertexRef venue =
              state.area_venues[b][venue_sampler.Sample(&rng)];
          NETOUT_RETURN_IF_ERROR(EmitPaper(
              &state, authors, venue,
              DrawTerms(&state, config, b, 4, term_sampler, shared_sampler,
                        &rng)));
        }
      }
    }
  }

  // ---- planted collaboration outliers ----------------------------------
  for (std::size_t a = 0; a < config.num_areas; ++a) {
    for (std::size_t i = 0; i < config.coauthor_outliers_per_area; ++i) {
      const std::string name =
          "oddcollab_" + std::to_string(a) + "_" + std::to_string(i);
      NETOUT_ASSIGN_OR_RETURN(
          VertexRef oddcollab,
          state.builder.AddVertex(state.author_type, name));
      dataset.coauthor_outlier_names.push_back(name);

      // In the star's candidate set via two joint home-area papers.
      for (int h = 0; h < 2; ++h) {
        std::vector<VertexRef> authors = {oddcollab,
                                          state.area_authors[a][0]};
        const VertexRef venue =
            state.area_venues[a][venue_sampler.Sample(&rng)];
        NETOUT_RETURN_IF_ERROR(EmitPaper(
            &state, authors, venue,
            DrawTerms(&state, config, a, 4, term_sampler, shared_sampler,
                      &rng)));
      }
      // Their own clique: a dedicated pool of external collaborators who
      // publish nowhere else. Venues stay home-area, so only the
      // collaboration profile deviates.
      std::vector<VertexRef> pool;
      for (std::size_t c = 0; c < config.collaborators_per_coauthor_outlier;
           ++c) {
        NETOUT_ASSIGN_OR_RETURN(
            VertexRef collaborator,
            state.builder.AddVertex(state.author_type,
                                    "ext_" + std::to_string(a) + "_" +
                                        std::to_string(i) + "_" +
                                        std::to_string(c)));
        pool.push_back(collaborator);
      }
      for (std::size_t p = 0; p < config.coauthor_outlier_papers; ++p) {
        std::vector<VertexRef> authors = {oddcollab};
        if (!pool.empty()) {
          const std::size_t count = 1 + rng.NextBounded(pool.size());
          for (std::size_t c = 0; c < count; ++c) {
            authors.push_back(pool[rng.NextBounded(pool.size())]);
          }
        }
        const VertexRef venue =
            state.area_venues[a][venue_sampler.Sample(&rng)];
        NETOUT_RETURN_IF_ERROR(EmitPaper(
            &state, authors, venue,
            DrawTerms(&state, config, a, 4, term_sampler, shared_sampler,
                      &rng)));
      }
    }
  }

  // ---- planted low-visibility authors ----------------------------------
  for (std::size_t a = 0; a < config.num_areas; ++a) {
    for (std::size_t i = 0; i < config.low_visibility_per_area; ++i) {
      const std::string name =
          "lowvis_" + std::to_string(a) + "_" + std::to_string(i);
      NETOUT_ASSIGN_OR_RETURN(
          VertexRef lowvis,
          state.builder.AddVertex(state.author_type, name));
      dataset.low_visibility_names.push_back(name);
      // One or two papers with the star in ordinary home-area venues:
      // unstable publication record, but NOT semantically anomalous.
      const int papers = 1 + static_cast<int>(rng.NextBounded(2));
      for (int p = 0; p < papers; ++p) {
        std::vector<VertexRef> authors = {lowvis, state.area_authors[a][0]};
        const VertexRef venue =
            state.area_venues[a][venue_sampler.Sample(&rng)];
        NETOUT_RETURN_IF_ERROR(EmitPaper(
            &state, authors, venue,
            DrawTerms(&state, config, a, 3, term_sampler, shared_sampler,
                      &rng)));
      }
    }
  }

  NETOUT_ASSIGN_OR_RETURN(dataset.hin, state.builder.Finish());
  dataset.author_type = state.author_type;
  dataset.paper_type = state.paper_type;
  dataset.venue_type = state.venue_type;
  dataset.term_type = state.term_type;
  return dataset;
}

}  // namespace netout
