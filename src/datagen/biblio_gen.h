#ifndef NETOUT_DATAGEN_BIBLIO_GEN_H_
#define NETOUT_DATAGEN_BIBLIO_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/hin.h"

namespace netout {

/// Configuration of the synthetic bibliographic network generator — the
/// stand-in for the paper's ArnetMiner dump (see DESIGN.md §2). The
/// generator produces the DBLP schema of Figure 1(a): author, paper,
/// venue, term vertices with writes / published_in / has_term edges,
/// organized into research areas (communities) with Zipf-skewed
/// productivity and venue popularity, plus ground-truth planted outliers.
struct BiblioConfig {
  std::uint64_t seed = 42;

  std::size_t num_areas = 8;
  std::size_t venues_per_area = 6;
  std::size_t terms_per_area = 80;
  std::size_t shared_terms = 150;  // cross-area vocabulary
  std::size_t authors_per_area = 250;
  std::size_t papers_per_area = 900;

  /// Mean number of coauthors beyond the first author (Poisson).
  double extra_authors_lambda = 1.6;
  /// Mean number of title terms beyond the first (Poisson).
  double extra_terms_lambda = 4.0;

  /// Zipf exponents: productivity / venue popularity / term frequency.
  double author_zipf = 0.85;
  double venue_zipf = 0.7;
  double term_zipf = 0.9;

  /// Probability that a coauthor is drawn from a different area.
  double cross_area_coauthor_prob = 0.04;
  /// Probability that a term comes from the shared vocabulary.
  double shared_term_prob = 0.3;

  /// Per area: authors who secretly publish most of their work in a
  /// *different* area's venues (the venue outliers of the Table 5 case
  /// studies). Their off-area papers carry home-area coauthors, so their
  /// collaboration profile stays normal — they are outliers under
  /// venue-judging queries only.
  std::size_t planted_outliers_per_area = 3;
  /// Off-area papers each planted venue outlier writes.
  std::size_t planted_outlier_papers = 25;

  /// Per area: authors with a normal venue profile but an anomalous
  /// collaboration pattern — they publish with a dedicated pool of
  /// otherwise-unconnected external collaborators. Outliers under
  /// coauthor-judging queries only (the paper's Ee-Peng Lim case).
  std::size_t coauthor_outliers_per_area = 3;
  /// Home-venue papers each coauthor outlier writes with its pool.
  std::size_t coauthor_outlier_papers = 15;
  /// Size of each coauthor outlier's external collaborator pool.
  std::size_t collaborators_per_coauthor_outlier = 4;

  /// Per area: one-or-two-paper authors in ordinary venues (the
  /// low-visibility candidates PathSim/CosSim wrongly favor, Table 3).
  std::size_t low_visibility_per_area = 3;
};

/// The generated network plus ground-truth labels and handy handles.
struct BiblioDataset {
  HinPtr hin;

  TypeId author_type = kInvalidTypeId;
  TypeId paper_type = kInvalidTypeId;
  TypeId venue_type = kInvalidTypeId;
  TypeId term_type = kInvalidTypeId;

  /// One prominent "star" author per area (guaranteed coauthor of every
  /// planted outlier of that area); the case-study anchor vertices.
  std::vector<std::string> star_names;

  /// Planted cross-community venue outliers (ground truth for
  /// venue-judged queries).
  std::vector<std::string> planted_outlier_names;
  /// Planted collaboration outliers (ground truth for coauthor-judged
  /// queries).
  std::vector<std::string> coauthor_outlier_names;
  /// Planted low-visibility authors.
  std::vector<std::string> low_visibility_names;
};

/// Deterministically generates a dataset from `config` (same seed, same
/// network). Vertex names: "star_<a>", "author_<a>_<i>",
/// "outlier_<a>_<i>", "oddcollab_<a>_<i>", "ext_<a>_<i>_<j>",
/// "lowvis_<a>_<i>", "venue_<a>_<i>", "term_<a>_<i>", "shared_term_<i>",
/// "paper_<serial>".
Result<BiblioDataset> GenerateBiblio(const BiblioConfig& config);

}  // namespace netout

#endif  // NETOUT_DATAGEN_BIBLIO_GEN_H_
