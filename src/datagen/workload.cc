#include "datagen/workload.h"

#include "common/random.h"

namespace netout {

const char* QueryTemplateName(QueryTemplate t) {
  switch (t) {
    case QueryTemplate::kQ1:
      return "Q1";
    case QueryTemplate::kQ2:
      return "Q2";
    case QueryTemplate::kQ3:
      return "Q3";
  }
  return "?";
}

std::string InstantiateTemplate(QueryTemplate t,
                                std::string_view author_name) {
  const std::string anchor = "author{\"" + std::string(author_name) + "\"}";
  switch (t) {
    case QueryTemplate::kQ1:
      return "FIND OUTLIERS FROM " + anchor +
             ".paper.author JUDGED BY author.paper.venue TOP 10;";
    case QueryTemplate::kQ2:
      return "FIND OUTLIERS IN " + anchor +
             ".paper.venue JUDGED BY venue.paper.term TOP 10;";
    case QueryTemplate::kQ3:
      return "FIND OUTLIERS IN " + anchor +
             ".paper.term JUDGED BY term.paper.venue TOP 10;";
  }
  return "";
}

Result<std::vector<std::string>> GenerateWorkload(
    const Hin& hin, std::string_view author_type_name, QueryTemplate t,
    const WorkloadConfig& config) {
  NETOUT_ASSIGN_OR_RETURN(TypeId author_type,
                          hin.schema().FindVertexType(author_type_name));
  const std::size_t num_authors = hin.NumVertices(author_type);
  if (num_authors == 0) {
    return Status::FailedPrecondition("the network has no authors");
  }
  Rng rng(config.seed);
  std::vector<std::string> queries;
  queries.reserve(config.num_queries);
  for (std::size_t i = 0; i < config.num_queries; ++i) {
    const LocalId author =
        static_cast<LocalId>(rng.NextBounded(num_authors));
    queries.push_back(InstantiateTemplate(
        t, hin.VertexName(VertexRef{author_type, author})));
  }
  return queries;
}

Result<std::vector<std::string>> GenerateSkewedWorkload(
    const Hin& hin, std::string_view author_type_name, QueryTemplate t,
    const SkewedWorkloadConfig& config) {
  NETOUT_ASSIGN_OR_RETURN(TypeId author_type,
                          hin.schema().FindVertexType(author_type_name));
  const std::size_t num_authors = hin.NumVertices(author_type);
  if (num_authors == 0) {
    return Status::FailedPrecondition("the network has no authors");
  }
  Rng rng(config.seed);
  const ZipfSampler sampler(num_authors, config.zipf_exponent);
  // Shuffle the rank->author assignment so skew does not systematically
  // favor the earliest-created vertices.
  std::vector<LocalId> ranked(num_authors);
  for (std::size_t i = 0; i < num_authors; ++i) {
    ranked[i] = static_cast<LocalId>(i);
  }
  rng.Shuffle(&ranked);
  std::vector<std::string> queries;
  queries.reserve(config.num_queries);
  for (std::size_t i = 0; i < config.num_queries; ++i) {
    const LocalId author = ranked[sampler.Sample(&rng)];
    queries.push_back(InstantiateTemplate(
        t, hin.VertexName(VertexRef{author_type, author})));
  }
  return queries;
}

}  // namespace netout
