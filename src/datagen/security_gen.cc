#include "datagen/security_gen.h"

#include <string>
#include <vector>

#include "common/random.h"
#include "graph/builder.h"

namespace netout {

Result<SecurityDataset> GenerateSecurity(const SecurityConfig& config) {
  if (config.num_subnets == 0 || config.hosts_per_subnet < 2 ||
      config.signatures_per_profile == 0) {
    return Status::InvalidArgument(
        "security config needs >=1 subnet, >=2 hosts/subnet, >=1 "
        "signature/profile");
  }
  Rng rng(config.seed);
  GraphBuilder builder;
  SecurityDataset dataset;

  NETOUT_ASSIGN_OR_RETURN(TypeId host_type, builder.AddVertexType("host"));
  NETOUT_ASSIGN_OR_RETURN(TypeId alert_type, builder.AddVertexType("alert"));
  NETOUT_ASSIGN_OR_RETURN(TypeId signature_type,
                          builder.AddVertexType("signature"));
  NETOUT_ASSIGN_OR_RETURN(TypeId user_type, builder.AddVertexType("user"));
  NETOUT_ASSIGN_OR_RETURN(
      EdgeTypeId raised_on,
      builder.AddEdgeType("raised_on", alert_type, host_type));
  NETOUT_ASSIGN_OR_RETURN(
      EdgeTypeId matches,
      builder.AddEdgeType("matches", alert_type, signature_type));
  NETOUT_ASSIGN_OR_RETURN(
      EdgeTypeId logs_into,
      builder.AddEdgeType("logs_into", user_type, host_type));

  // Subnet infrastructure: hosts, per-subnet signature profile, users.
  std::vector<std::vector<VertexRef>> subnet_hosts(config.num_subnets);
  std::vector<std::vector<VertexRef>> profile_signatures(config.num_subnets);
  for (std::size_t s = 0; s < config.num_subnets; ++s) {
    for (std::size_t h = 0; h < config.hosts_per_subnet; ++h) {
      const std::string name = h == 0
                                   ? "gateway_" + std::to_string(s)
                                   : "host_" + std::to_string(s) + "_" +
                                         std::to_string(h);
      NETOUT_ASSIGN_OR_RETURN(VertexRef host,
                              builder.AddVertex(host_type, name));
      subnet_hosts[s].push_back(host);
    }
    dataset.gateway_names.push_back("gateway_" + std::to_string(s));
    for (std::size_t g = 0; g < config.signatures_per_profile; ++g) {
      NETOUT_ASSIGN_OR_RETURN(
          VertexRef signature,
          builder.AddVertex(signature_type, "sig_" + std::to_string(s) +
                                                "_" + std::to_string(g)));
      profile_signatures[s].push_back(signature);
    }
  }

  // Users: each user logs into the gateway of one subnet plus a few of
  // its hosts, making "gateway.user.host" a subnet neighborhood.
  for (std::size_t u = 0; u < config.users; ++u) {
    NETOUT_ASSIGN_OR_RETURN(
        VertexRef user,
        builder.AddVertex(user_type, "user_" + std::to_string(u)));
    const std::size_t s = rng.NextBounded(config.num_subnets);
    NETOUT_RETURN_IF_ERROR(
        builder.AddEdge(logs_into, user, subnet_hosts[s][0]));
    const std::size_t logins = 2 + rng.NextBounded(4);
    for (std::size_t l = 0; l < logins; ++l) {
      NETOUT_RETURN_IF_ERROR(builder.AddEdge(
          logs_into, user,
          subnet_hosts[s][rng.NextBounded(config.hosts_per_subnet)]));
    }
  }
  // Guarantee every host is reachable from its gateway via some user.
  for (std::size_t s = 0; s < config.num_subnets; ++s) {
    for (std::size_t h = 1; h < config.hosts_per_subnet; ++h) {
      NETOUT_ASSIGN_OR_RETURN(
          VertexRef user,
          builder.AddVertex(user_type, "admin_" + std::to_string(s) + "_" +
                                           std::to_string(h)));
      NETOUT_RETURN_IF_ERROR(
          builder.AddEdge(logs_into, user, subnet_hosts[s][0]));
      NETOUT_RETURN_IF_ERROR(
          builder.AddEdge(logs_into, user, subnet_hosts[s][h]));
    }
  }

  const ZipfSampler signature_sampler(config.signatures_per_profile,
                                      config.signature_zipf);
  std::size_t alert_serial = 0;
  auto emit_alert = [&](VertexRef host, VertexRef signature) -> Status {
    NETOUT_ASSIGN_OR_RETURN(
        VertexRef alert,
        builder.AddVertex(alert_type,
                          "alert_" + std::to_string(alert_serial++)));
    NETOUT_RETURN_IF_ERROR(builder.AddEdge(raised_on, alert, host));
    return builder.AddEdge(matches, alert, signature);
  };

  // Baseline alert traffic: subnet-typical signatures.
  for (std::size_t s = 0; s < config.num_subnets; ++s) {
    for (const VertexRef& host : subnet_hosts[s]) {
      for (std::size_t a = 0; a < config.alerts_per_host; ++a) {
        NETOUT_RETURN_IF_ERROR(emit_alert(
            host, profile_signatures[s][signature_sampler.Sample(&rng)]));
      }
    }
  }

  // Compromised hosts: extra alerts matching another subnet's profile.
  for (std::size_t s = 0; s < config.num_subnets && config.num_subnets > 1;
       ++s) {
    for (std::size_t c = 0; c < config.compromised_per_subnet; ++c) {
      // Pick a non-gateway host deterministically spread over the subnet.
      const std::size_t index =
          1 + (c * 7) % (config.hosts_per_subnet - 1);
      const VertexRef host = subnet_hosts[s][index];
      dataset.compromised_names.push_back(
          "host_" + std::to_string(s) + "_" + std::to_string(index));
      std::size_t other = rng.NextBounded(config.num_subnets - 1);
      if (other >= s) ++other;
      for (std::size_t a = 0; a < config.compromise_alerts; ++a) {
        NETOUT_RETURN_IF_ERROR(emit_alert(
            host,
            profile_signatures[other][signature_sampler.Sample(&rng)]));
      }
    }
  }

  NETOUT_ASSIGN_OR_RETURN(dataset.hin, builder.Finish());
  dataset.host_type = host_type;
  dataset.alert_type = alert_type;
  dataset.signature_type = signature_type;
  dataset.user_type = user_type;
  return dataset;
}

}  // namespace netout
