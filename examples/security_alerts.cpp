// Second application domain: query-based outlier detection over an
// intrusion-alert HIN (hosts, alerts, signatures, users). Shows that the
// framework is schema-agnostic: the same query language and NetOut
// measure, a completely different network.
//
//   ./build/examples/security_alerts

#include <cstdio>
#include <cstdlib>
#include <string>

#include "datagen/security_gen.h"
#include "graph/stats.h"
#include "query/engine.h"

int main() {
  using namespace netout;

  auto dataset_result = GenerateSecurity(SecurityConfig{});
  if (!dataset_result.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 dataset_result.status().ToString().c_str());
    return EXIT_FAILURE;
  }
  const SecurityDataset dataset = std::move(dataset_result).value();
  std::printf("synthetic intrusion-alert network:\n%s\n",
              ComputeGraphStats(*dataset.hin).ToString().c_str());
  std::printf("planted compromised hosts:");
  for (const std::string& name : dataset.compromised_names) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");

  Engine engine(dataset.hin);

  // For every subnet: hosts reachable from the gateway through shared
  // users, judged by the signatures their alerts match. A compromised
  // host raises alerts against signatures foreign to the subnet profile.
  int found = 0;
  for (std::size_t subnet = 0; subnet < dataset.gateway_names.size();
       ++subnet) {
    const std::string query =
        "FIND OUTLIERS FROM host{\"" + dataset.gateway_names[subnet] +
        "\"}.user.host JUDGED BY host.alert.signature TOP 3;";
    auto result = engine.Execute(query);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return EXIT_FAILURE;
    }
    std::printf("\nsubnet %zu (%zu hosts screened):\n", subnet,
                result->stats.candidate_count);
    for (const OutlierEntry& entry : result->outliers) {
      bool is_planted = false;
      for (const std::string& name : dataset.compromised_names) {
        is_planted |= (name == entry.name);
      }
      if (is_planted) ++found;
      std::printf("  %-12s NetOut=%8.3f %s\n", entry.name.c_str(),
                  entry.score, is_planted ? "<-- planted compromise" : "");
    }
  }
  std::printf("\nplanted compromises surfaced in top-3 lists: %d/%zu\n",
              found, dataset.compromised_names.size());

  // A cross-subnet investigation: suspicious subnet-0 hosts relative to
  // subnet-1's baseline behavior, weighting signatures over users.
  const std::string cross_query =
      "FIND OUTLIERS FROM host{\"" + dataset.gateway_names[0] +
      "\"}.user.host COMPARED TO host{\"" + dataset.gateway_names[1] +
      "\"}.user.host JUDGED BY host.alert.signature : 2.0, host.user "
      "TOP 5;";
  std::printf("\ncross-subnet comparison:\n%s\n", cross_query.c_str());
  auto cross = engine.Execute(cross_query);
  if (!cross.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 cross.status().ToString().c_str());
    return EXIT_FAILURE;
  }
  for (const OutlierEntry& entry : cross->outliers) {
    std::printf("  %-12s combined=%8.3f\n", entry.name.c_str(),
                entry.score);
  }
  return EXIT_SUCCESS;
}
