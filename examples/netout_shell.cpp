// Interactive outlier-query shell: load a network (text or binary
// snapshot, or a built-in synthetic dataset), then type queries at the
// prompt. This is the "data analyst" loop the paper motivates —
// exploratory, iteratively refined outlier queries with fast answers.
//
//   ./build/examples/netout_shell                     # synthetic DBLP
//   ./build/examples/netout_shell graph.hin           # binary snapshot
//   ./build/examples/netout_shell graph.tsv --text    # text format
//
// Shell commands:
//   \schema          print vertex/edge types
//   \stats           print graph statistics
//   \index pm        build + attach a full PM index
//   \index cache     attach a dynamic memoization cache
//   \index off       detach the index
//   \explain NAME    explain the last query's score for vertex NAME
//   \suggest         suggest alternative JUDGED BY paths for the last query
//   \plan            show the resolved plan of the last query
//   \help            show examples
//   \quit            exit
// Anything else is parsed as an outlier query (may span multiple lines;
// terminate with ';').

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "datagen/biblio_gen.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "index/cached_index.h"
#include "index/pm_index.h"
#include "query/engine.h"

namespace {

using namespace netout;

void PrintSchema(const Hin& hin) {
  const Schema& schema = hin.schema();
  std::printf("vertex types:");
  for (TypeId t = 0; t < schema.num_vertex_types(); ++t) {
    std::printf(" %s(%zu)", schema.VertexTypeName(t).c_str(),
                hin.NumVertices(t));
  }
  std::printf("\nedge types:\n");
  for (EdgeTypeId e = 0; e < schema.num_edge_types(); ++e) {
    const EdgeTypeInfo& info = schema.edge_type(e);
    std::printf("  %s: %s -> %s\n", info.name.c_str(),
                schema.VertexTypeName(info.src).c_str(),
                schema.VertexTypeName(info.dst).c_str());
  }
}

void PrintHelp() {
  std::printf(R"(example queries:
  FIND OUTLIERS FROM author{"star_0"}.paper.author
  JUDGED BY author.paper.venue TOP 10;

  FIND OUTLIERS FROM venue{"venue_0_0"}.paper.author AS A
  WHERE COUNT(A.paper) >= 5
  JUDGED BY author.paper.author, author.paper.term : 3.0
  USING MEASURE netout TOP 10;
)");
}

}  // namespace

int main(int argc, char** argv) {
  HinPtr hin;
  if (argc > 1) {
    const bool text = argc > 2 && std::strcmp(argv[2], "--text") == 0;
    auto loaded = text ? LoadHinText(argv[1]) : LoadHinBinary(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load '%s': %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    hin = std::move(loaded).value();
    std::printf("loaded %s\n", argv[1]);
  } else {
    std::printf("no graph file given; generating a synthetic DBLP-style "
                "network (try \\schema)\n");
    auto dataset = GenerateBiblio(BiblioConfig{});
    if (!dataset.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   dataset.status().ToString().c_str());
      return 1;
    }
    hin = dataset->hin;
  }

  std::unique_ptr<PmIndex> pm_index;
  std::unique_ptr<CachedIndex> cache_index;
  const MetaPathIndex* active_index = nullptr;
  auto make_engine = [&]() {
    EngineOptions options;
    options.index = active_index;
    return std::make_unique<Engine>(hin, options);
  };
  std::unique_ptr<Engine> engine = make_engine();

  std::printf("netout shell — \\help for examples, \\quit to exit\n");
  std::string buffer;
  std::string line;
  std::string last_query;
  while (true) {
    std::printf(buffer.empty() ? "netout> " : "   ...> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (buffer.empty() && !line.empty() && line[0] == '\\') {
      if (line == "\\quit" || line == "\\q") break;
      if (line == "\\help") {
        PrintHelp();
      } else if (line == "\\schema") {
        PrintSchema(*hin);
      } else if (line == "\\stats") {
        std::printf("%s", ComputeGraphStats(*hin).ToString().c_str());
      } else if (line == "\\index pm") {
        std::printf("building PM index...\n");
        auto built = PmIndex::Build(*hin);
        if (!built.ok()) {
          std::printf("error: %s\n", built.status().ToString().c_str());
        } else {
          pm_index = std::move(built).value();
          active_index = pm_index.get();
          engine = make_engine();
          std::printf("PM index attached (%zu relations)\n",
                      pm_index->num_relations());
        }
      } else if (line == "\\index cache") {
        cache_index = std::make_unique<CachedIndex>();
        active_index = cache_index.get();
        engine = make_engine();
        std::printf("dynamic cache attached (warms up as you query)\n");
      } else if (line == "\\index off") {
        active_index = nullptr;
        pm_index.reset();
        cache_index.reset();
        engine = make_engine();
        std::printf("index detached\n");
      } else if (line.rfind("\\explain ", 0) == 0) {
        if (last_query.empty()) {
          std::printf("run a query first\n");
          continue;
        }
        const std::string name = line.substr(9);
        auto explanations = engine->Explain(last_query, name);
        if (!explanations.ok()) {
          std::printf("error: %s\n",
                      explanations.status().ToString().c_str());
          continue;
        }
        for (const auto& explanation : explanations.value()) {
          std::printf("path %s: NetOut = %.4f\n",
                      explanation.path_text.c_str(), explanation.score);
          for (const auto& term : explanation.distinctive) {
            std::printf("  + %-24s candidate %.0f, reference mass %.0f\n",
                        term.name.c_str(), term.candidate_count,
                        term.reference_mass);
          }
          for (const auto& term : explanation.missing) {
            std::printf("  - %-24s candidate %.0f, reference mass %.0f\n",
                        term.name.c_str(), term.candidate_count,
                        term.reference_mass);
          }
        }
      } else if (line == "\\plan") {
        if (last_query.empty()) {
          std::printf("run a query first\n");
          continue;
        }
        auto description = engine->DescribePlan(last_query);
        if (!description.ok()) {
          std::printf("error: %s\n",
                      description.status().ToString().c_str());
        } else {
          std::printf("%s", description.value().c_str());
        }
      } else if (line == "\\suggest") {
        if (last_query.empty()) {
          std::printf("run a query first\n");
          continue;
        }
        auto suggestions = engine->SuggestFeaturePaths(last_query, 3);
        if (!suggestions.ok()) {
          std::printf("error: %s\n",
                      suggestions.status().ToString().c_str());
          continue;
        }
        std::printf("alternative JUDGED BY paths:\n");
        for (const std::string& path : suggestions.value()) {
          std::printf("  %s\n", path.c_str());
        }
      } else {
        std::printf("unknown command '%s' (\\help)\n", line.c_str());
      }
      continue;
    }
    buffer += line;
    buffer += "\n";
    if (buffer.find(';') == std::string::npos) continue;  // keep reading

    auto result = engine->Execute(buffer);
    last_query = buffer;
    buffer.clear();
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    std::printf("%zu candidate(s), %zu reference(s), %.2f ms\n",
                result->stats.candidate_count,
                result->stats.reference_count,
                static_cast<double>(result->stats.total_nanos) / 1e6);
    for (std::size_t i = 0; i < result->outliers.size(); ++i) {
      std::printf("  %2zu. %-24s %12.4f%s\n", i + 1,
                  result->outliers[i].name.c_str(),
                  result->outliers[i].score,
                  result->outliers[i].zero_visibility
                      ? "  (zero visibility)"
                      : "");
    }
  }
  std::printf("\nbye\n");
  return 0;
}
