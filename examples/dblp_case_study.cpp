// DBLP-style case study on the synthetic bibliographic network: walks
// through the paper's motivating example — outliers among a prolific
// author's coauthors — under different judgment criteria, reference
// sets, and measures, and shows the WHERE / COMPARED TO / weighting
// machinery of the query language.
//
//   ./build/examples/dblp_case_study [seed]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "datagen/biblio_gen.h"
#include "graph/stats.h"
#include "query/engine.h"

namespace {

using namespace netout;

void RunAndPrint(Engine* engine, const char* title,
                 const std::string& query) {
  std::printf("\n== %s ==\n%s\n", title, query.c_str());
  auto result = engine->Execute(query);
  if (!result.ok()) {
    std::printf("  error: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("  candidates: %zu, references: %zu, time: %.2f ms\n",
              result->stats.candidate_count, result->stats.reference_count,
              static_cast<double>(result->stats.total_nanos) / 1e6);
  for (std::size_t i = 0; i < result->outliers.size(); ++i) {
    std::printf("  %2zu. %-20s %10.4f%s\n", i + 1,
                result->outliers[i].name.c_str(), result->outliers[i].score,
                result->outliers[i].zero_visibility ? "  (zero visibility)"
                                                    : "");
  }
}

}  // namespace

int main(int argc, char** argv) {
  BiblioConfig config;
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);
  config.cross_area_coauthor_prob = 0.0;  // keep communities clean
  auto dataset_result = GenerateBiblio(config);
  if (!dataset_result.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 dataset_result.status().ToString().c_str());
    return EXIT_FAILURE;
  }
  const BiblioDataset dataset = std::move(dataset_result).value();
  std::printf("synthetic DBLP-style network:\n%s",
              ComputeGraphStats(*dataset.hin).ToString().c_str());

  Engine engine(dataset.hin);
  const std::string star = dataset.star_names[0];

  // 1. The paper's Example 1: coauthors judged by venues.
  RunAndPrint(&engine, "coauthors judged by publishing venues",
              "FIND OUTLIERS FROM author{\"" + star +
                  "\"}.paper.author JUDGED BY author.paper.venue TOP 5;");

  // 2. Same candidates, different aspect: judged by coauthors.
  RunAndPrint(&engine, "same candidates judged by collaborators",
              "FIND OUTLIERS FROM author{\"" + star +
                  "\"}.paper.author JUDGED BY author.paper.author TOP 5;");

  // 3. The paper's Example 2: an explicit reference community.
  RunAndPrint(
      &engine, "coauthors compared to another community",
      "FIND OUTLIERS FROM author{\"" + star +
          "\"}.paper.author COMPARED TO author{\"" + dataset.star_names[1] +
          "\"}.paper.author JUDGED BY author.paper.venue, "
          "author.paper.author TOP 5;");

  // 4. The paper's Example 3: venue authors with a WHERE filter and
  //    weighted feature meta-paths.
  RunAndPrint(&engine, "filtered venue authors with weighted paths",
              "FIND OUTLIERS FROM venue{\"venue_0_0\"}.paper.author AS A "
              "WHERE COUNT(A.paper) >= 5 "
              "JUDGED BY author.paper.author, author.paper.term : 3.0 "
              "TOP 5;");

  // 5. Set algebra: authors of two venues, minus the star's circle.
  RunAndPrint(&engine, "set algebra over candidate sets",
              "FIND OUTLIERS FROM (venue{\"venue_0_0\"}.paper.author UNION "
              "venue{\"venue_0_1\"}.paper.author) EXCEPT author{\"" +
                  star +
                  "\"}.paper.author JUDGED BY author.paper.venue TOP 5;");

  // 6. Measure comparison on one query (Table 3 in miniature).
  for (const char* measure : {"netout", "pathsim", "cossim", "lof"}) {
    RunAndPrint(&engine,
                (std::string("measure = ") + measure).c_str(),
                "FIND OUTLIERS FROM author{\"" + star +
                    "\"}.paper.author JUDGED BY author.paper.venue "
                    "USING MEASURE " +
                    measure + " TOP 3;");
  }
  return EXIT_SUCCESS;
}
