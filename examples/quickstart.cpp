// Quickstart: build a small bibliographic HIN by hand, run an outlier
// query through the full engine, and inspect normalized connectivity on
// the paper's Figure 2 example.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdlib>
#include <iostream>

#include "graph/builder.h"
#include "measure/connectivity.h"
#include "metapath/metapath.h"
#include "metapath/traversal.h"
#include "query/engine.h"

namespace {

// Adds `count` papers by `author` published in `venue`.
void AddPapers(netout::GraphBuilder* builder, netout::EdgeTypeId writes,
               netout::EdgeTypeId published_in, netout::TypeId paper_type,
               netout::VertexRef author, netout::VertexRef venue, int count,
               int* serial) {
  for (int i = 0; i < count; ++i) {
    auto paper =
        builder->AddVertex(paper_type, "paper_" + std::to_string((*serial)++))
            .value();
    if (!builder->AddEdge(writes, author, paper).ok() ||
        !builder->AddEdge(published_in, paper, venue).ok()) {
      std::cerr << "failed to add edges\n";
      std::abort();
    }
  }
}

}  // namespace

int main() {
  using namespace netout;

  // ---- 1. Build a toy DBLP-style network ------------------------------
  GraphBuilder builder;
  const TypeId author = builder.AddVertexType("author").value();
  const TypeId paper = builder.AddVertexType("paper").value();
  const TypeId venue = builder.AddVertexType("venue").value();
  const EdgeTypeId writes =
      builder.AddEdgeType("writes", author, paper).value();
  const EdgeTypeId published_in =
      builder.AddEdgeType("published_in", paper, venue).value();

  const VertexRef vldb = builder.AddVertex(venue, "VLDB").value();
  const VertexRef kdd = builder.AddVertex(venue, "KDD").value();
  const VertexRef siggraph = builder.AddVertex(venue, "SIGGRAPH").value();

  int serial = 0;
  // Five database researchers publishing in VLDB/KDD...
  for (const char* name : {"Ava", "Liam", "Zoe", "Mia", "Noah"}) {
    const VertexRef a = builder.AddVertex(author, name).value();
    AddPapers(&builder, writes, published_in, paper, a, vldb, 6, &serial);
    AddPapers(&builder, writes, published_in, paper, a, kdd, 4, &serial);
  }
  // ...and one graphics person, Eve.
  const VertexRef eve = builder.AddVertex(author, "Eve").value();
  AddPapers(&builder, writes, published_in, paper, eve, siggraph, 8, &serial);
  AddPapers(&builder, writes, published_in, paper, eve, kdd, 1, &serial);

  HinPtr hin = builder.Finish().value();
  std::cout << "built network: " << hin->TotalVertices() << " vertices, "
            << hin->TotalEdges() << " edges\n\n";

  // ---- 2. Run an outlier query through the engine ----------------------
  Engine engine(hin);
  auto result = engine.Execute(R"(
      FIND OUTLIERS FROM author
      JUDGED BY author.paper.venue
      TOP 3;
  )");
  if (!result.ok()) {
    std::cerr << "query failed: " << result.status() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "top outliers among all authors, judged by venues "
               "(smaller NetOut = more outlying):\n";
  for (const OutlierEntry& entry : result->outliers) {
    std::cout << "  " << entry.name << "  NetOut=" << entry.score << "\n";
  }
  std::cout << "(expect Eve first: she publishes in SIGGRAPH, everyone "
               "else in VLDB/KDD)\n\n";

  // ---- 3. Normalized connectivity by hand ------------------------------
  const MetaPath apv =
      MetaPath::Parse(hin->schema(), "author.paper.venue").value();
  PathCounter counter(hin);
  const SparseVector ava =
      counter.NeighborVector(hin->FindVertex("author", "Ava").value(), apv)
          .value();
  const SparseVector eve_vec =
      counter.NeighborVector(hin->FindVertex("author", "Eve").value(), apv)
          .value();
  std::cout << "phi(Ava)  = " << ava.ToString() << "\n";
  std::cout << "phi(Eve)  = " << eve_vec.ToString() << "\n";
  std::cout << "visibility(Ava) = " << Visibility(ava.View()) << "\n";
  std::cout << "r(Ava, Eve) = "
            << NormalizedConnectivity(ava.View(), eve_vec.View()) << "\n";
  std::cout << "r(Eve, Ava) = "
            << NormalizedConnectivity(eve_vec.View(), ava.View()) << "\n";
  return EXIT_SUCCESS;
}
