file(REMOVE_RECURSE
  "CMakeFiles/netout_graph.dir/builder.cc.o"
  "CMakeFiles/netout_graph.dir/builder.cc.o.d"
  "CMakeFiles/netout_graph.dir/csr.cc.o"
  "CMakeFiles/netout_graph.dir/csr.cc.o.d"
  "CMakeFiles/netout_graph.dir/hin.cc.o"
  "CMakeFiles/netout_graph.dir/hin.cc.o.d"
  "CMakeFiles/netout_graph.dir/import.cc.o"
  "CMakeFiles/netout_graph.dir/import.cc.o.d"
  "CMakeFiles/netout_graph.dir/io.cc.o"
  "CMakeFiles/netout_graph.dir/io.cc.o.d"
  "CMakeFiles/netout_graph.dir/schema.cc.o"
  "CMakeFiles/netout_graph.dir/schema.cc.o.d"
  "CMakeFiles/netout_graph.dir/stats.cc.o"
  "CMakeFiles/netout_graph.dir/stats.cc.o.d"
  "CMakeFiles/netout_graph.dir/subgraph.cc.o"
  "CMakeFiles/netout_graph.dir/subgraph.cc.o.d"
  "libnetout_graph.a"
  "libnetout_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netout_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
