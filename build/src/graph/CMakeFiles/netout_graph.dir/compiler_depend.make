# Empty compiler generated dependencies file for netout_graph.
# This may be replaced when dependencies are built.
