
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/builder.cc" "src/graph/CMakeFiles/netout_graph.dir/builder.cc.o" "gcc" "src/graph/CMakeFiles/netout_graph.dir/builder.cc.o.d"
  "/root/repo/src/graph/csr.cc" "src/graph/CMakeFiles/netout_graph.dir/csr.cc.o" "gcc" "src/graph/CMakeFiles/netout_graph.dir/csr.cc.o.d"
  "/root/repo/src/graph/hin.cc" "src/graph/CMakeFiles/netout_graph.dir/hin.cc.o" "gcc" "src/graph/CMakeFiles/netout_graph.dir/hin.cc.o.d"
  "/root/repo/src/graph/import.cc" "src/graph/CMakeFiles/netout_graph.dir/import.cc.o" "gcc" "src/graph/CMakeFiles/netout_graph.dir/import.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/graph/CMakeFiles/netout_graph.dir/io.cc.o" "gcc" "src/graph/CMakeFiles/netout_graph.dir/io.cc.o.d"
  "/root/repo/src/graph/schema.cc" "src/graph/CMakeFiles/netout_graph.dir/schema.cc.o" "gcc" "src/graph/CMakeFiles/netout_graph.dir/schema.cc.o.d"
  "/root/repo/src/graph/stats.cc" "src/graph/CMakeFiles/netout_graph.dir/stats.cc.o" "gcc" "src/graph/CMakeFiles/netout_graph.dir/stats.cc.o.d"
  "/root/repo/src/graph/subgraph.cc" "src/graph/CMakeFiles/netout_graph.dir/subgraph.cc.o" "gcc" "src/graph/CMakeFiles/netout_graph.dir/subgraph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/netout_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
