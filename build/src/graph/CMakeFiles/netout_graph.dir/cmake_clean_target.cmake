file(REMOVE_RECURSE
  "libnetout_graph.a"
)
