file(REMOVE_RECURSE
  "CMakeFiles/netout_query.dir/analyzer.cc.o"
  "CMakeFiles/netout_query.dir/analyzer.cc.o.d"
  "CMakeFiles/netout_query.dir/batch.cc.o"
  "CMakeFiles/netout_query.dir/batch.cc.o.d"
  "CMakeFiles/netout_query.dir/engine.cc.o"
  "CMakeFiles/netout_query.dir/engine.cc.o.d"
  "CMakeFiles/netout_query.dir/executor.cc.o"
  "CMakeFiles/netout_query.dir/executor.cc.o.d"
  "CMakeFiles/netout_query.dir/lexer.cc.o"
  "CMakeFiles/netout_query.dir/lexer.cc.o.d"
  "CMakeFiles/netout_query.dir/parser.cc.o"
  "CMakeFiles/netout_query.dir/parser.cc.o.d"
  "CMakeFiles/netout_query.dir/progressive.cc.o"
  "CMakeFiles/netout_query.dir/progressive.cc.o.d"
  "CMakeFiles/netout_query.dir/result_json.cc.o"
  "CMakeFiles/netout_query.dir/result_json.cc.o.d"
  "libnetout_query.a"
  "libnetout_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netout_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
