# Empty dependencies file for netout_query.
# This may be replaced when dependencies are built.
