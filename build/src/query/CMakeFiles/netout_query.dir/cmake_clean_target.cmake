file(REMOVE_RECURSE
  "libnetout_query.a"
)
