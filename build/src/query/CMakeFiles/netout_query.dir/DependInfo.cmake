
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/analyzer.cc" "src/query/CMakeFiles/netout_query.dir/analyzer.cc.o" "gcc" "src/query/CMakeFiles/netout_query.dir/analyzer.cc.o.d"
  "/root/repo/src/query/batch.cc" "src/query/CMakeFiles/netout_query.dir/batch.cc.o" "gcc" "src/query/CMakeFiles/netout_query.dir/batch.cc.o.d"
  "/root/repo/src/query/engine.cc" "src/query/CMakeFiles/netout_query.dir/engine.cc.o" "gcc" "src/query/CMakeFiles/netout_query.dir/engine.cc.o.d"
  "/root/repo/src/query/executor.cc" "src/query/CMakeFiles/netout_query.dir/executor.cc.o" "gcc" "src/query/CMakeFiles/netout_query.dir/executor.cc.o.d"
  "/root/repo/src/query/lexer.cc" "src/query/CMakeFiles/netout_query.dir/lexer.cc.o" "gcc" "src/query/CMakeFiles/netout_query.dir/lexer.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/query/CMakeFiles/netout_query.dir/parser.cc.o" "gcc" "src/query/CMakeFiles/netout_query.dir/parser.cc.o.d"
  "/root/repo/src/query/progressive.cc" "src/query/CMakeFiles/netout_query.dir/progressive.cc.o" "gcc" "src/query/CMakeFiles/netout_query.dir/progressive.cc.o.d"
  "/root/repo/src/query/result_json.cc" "src/query/CMakeFiles/netout_query.dir/result_json.cc.o" "gcc" "src/query/CMakeFiles/netout_query.dir/result_json.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/measure/CMakeFiles/netout_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/netout_index.dir/DependInfo.cmake"
  "/root/repo/build/src/metapath/CMakeFiles/netout_metapath.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/netout_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/netout_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
