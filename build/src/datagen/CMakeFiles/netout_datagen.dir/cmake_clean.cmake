file(REMOVE_RECURSE
  "CMakeFiles/netout_datagen.dir/biblio_gen.cc.o"
  "CMakeFiles/netout_datagen.dir/biblio_gen.cc.o.d"
  "CMakeFiles/netout_datagen.dir/security_gen.cc.o"
  "CMakeFiles/netout_datagen.dir/security_gen.cc.o.d"
  "CMakeFiles/netout_datagen.dir/workload.cc.o"
  "CMakeFiles/netout_datagen.dir/workload.cc.o.d"
  "libnetout_datagen.a"
  "libnetout_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netout_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
