
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/biblio_gen.cc" "src/datagen/CMakeFiles/netout_datagen.dir/biblio_gen.cc.o" "gcc" "src/datagen/CMakeFiles/netout_datagen.dir/biblio_gen.cc.o.d"
  "/root/repo/src/datagen/security_gen.cc" "src/datagen/CMakeFiles/netout_datagen.dir/security_gen.cc.o" "gcc" "src/datagen/CMakeFiles/netout_datagen.dir/security_gen.cc.o.d"
  "/root/repo/src/datagen/workload.cc" "src/datagen/CMakeFiles/netout_datagen.dir/workload.cc.o" "gcc" "src/datagen/CMakeFiles/netout_datagen.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/netout_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/netout_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
