# Empty compiler generated dependencies file for netout_datagen.
# This may be replaced when dependencies are built.
