file(REMOVE_RECURSE
  "libnetout_datagen.a"
)
