file(REMOVE_RECURSE
  "libnetout_common.a"
)
