file(REMOVE_RECURSE
  "CMakeFiles/netout_common.dir/binary_io.cc.o"
  "CMakeFiles/netout_common.dir/binary_io.cc.o.d"
  "CMakeFiles/netout_common.dir/json.cc.o"
  "CMakeFiles/netout_common.dir/json.cc.o.d"
  "CMakeFiles/netout_common.dir/logging.cc.o"
  "CMakeFiles/netout_common.dir/logging.cc.o.d"
  "CMakeFiles/netout_common.dir/random.cc.o"
  "CMakeFiles/netout_common.dir/random.cc.o.d"
  "CMakeFiles/netout_common.dir/status.cc.o"
  "CMakeFiles/netout_common.dir/status.cc.o.d"
  "CMakeFiles/netout_common.dir/string_util.cc.o"
  "CMakeFiles/netout_common.dir/string_util.cc.o.d"
  "CMakeFiles/netout_common.dir/thread_pool.cc.o"
  "CMakeFiles/netout_common.dir/thread_pool.cc.o.d"
  "libnetout_common.a"
  "libnetout_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netout_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
