# Empty compiler generated dependencies file for netout_common.
# This may be replaced when dependencies are built.
