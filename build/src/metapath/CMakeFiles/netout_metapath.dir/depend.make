# Empty dependencies file for netout_metapath.
# This may be replaced when dependencies are built.
