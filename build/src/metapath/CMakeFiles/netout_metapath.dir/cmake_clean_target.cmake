file(REMOVE_RECURSE
  "libnetout_metapath.a"
)
