file(REMOVE_RECURSE
  "CMakeFiles/netout_metapath.dir/evaluator.cc.o"
  "CMakeFiles/netout_metapath.dir/evaluator.cc.o.d"
  "CMakeFiles/netout_metapath.dir/matrix.cc.o"
  "CMakeFiles/netout_metapath.dir/matrix.cc.o.d"
  "CMakeFiles/netout_metapath.dir/metapath.cc.o"
  "CMakeFiles/netout_metapath.dir/metapath.cc.o.d"
  "CMakeFiles/netout_metapath.dir/sparse_vector.cc.o"
  "CMakeFiles/netout_metapath.dir/sparse_vector.cc.o.d"
  "CMakeFiles/netout_metapath.dir/traversal.cc.o"
  "CMakeFiles/netout_metapath.dir/traversal.cc.o.d"
  "libnetout_metapath.a"
  "libnetout_metapath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netout_metapath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
