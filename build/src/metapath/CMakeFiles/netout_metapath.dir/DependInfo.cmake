
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metapath/evaluator.cc" "src/metapath/CMakeFiles/netout_metapath.dir/evaluator.cc.o" "gcc" "src/metapath/CMakeFiles/netout_metapath.dir/evaluator.cc.o.d"
  "/root/repo/src/metapath/matrix.cc" "src/metapath/CMakeFiles/netout_metapath.dir/matrix.cc.o" "gcc" "src/metapath/CMakeFiles/netout_metapath.dir/matrix.cc.o.d"
  "/root/repo/src/metapath/metapath.cc" "src/metapath/CMakeFiles/netout_metapath.dir/metapath.cc.o" "gcc" "src/metapath/CMakeFiles/netout_metapath.dir/metapath.cc.o.d"
  "/root/repo/src/metapath/sparse_vector.cc" "src/metapath/CMakeFiles/netout_metapath.dir/sparse_vector.cc.o" "gcc" "src/metapath/CMakeFiles/netout_metapath.dir/sparse_vector.cc.o.d"
  "/root/repo/src/metapath/traversal.cc" "src/metapath/CMakeFiles/netout_metapath.dir/traversal.cc.o" "gcc" "src/metapath/CMakeFiles/netout_metapath.dir/traversal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/netout_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/netout_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
