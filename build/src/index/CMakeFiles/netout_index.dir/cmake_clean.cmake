file(REMOVE_RECURSE
  "CMakeFiles/netout_index.dir/cached_index.cc.o"
  "CMakeFiles/netout_index.dir/cached_index.cc.o.d"
  "CMakeFiles/netout_index.dir/pm_index.cc.o"
  "CMakeFiles/netout_index.dir/pm_index.cc.o.d"
  "CMakeFiles/netout_index.dir/serialize.cc.o"
  "CMakeFiles/netout_index.dir/serialize.cc.o.d"
  "CMakeFiles/netout_index.dir/spm_index.cc.o"
  "CMakeFiles/netout_index.dir/spm_index.cc.o.d"
  "libnetout_index.a"
  "libnetout_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netout_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
