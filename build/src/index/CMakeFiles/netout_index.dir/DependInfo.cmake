
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/cached_index.cc" "src/index/CMakeFiles/netout_index.dir/cached_index.cc.o" "gcc" "src/index/CMakeFiles/netout_index.dir/cached_index.cc.o.d"
  "/root/repo/src/index/pm_index.cc" "src/index/CMakeFiles/netout_index.dir/pm_index.cc.o" "gcc" "src/index/CMakeFiles/netout_index.dir/pm_index.cc.o.d"
  "/root/repo/src/index/serialize.cc" "src/index/CMakeFiles/netout_index.dir/serialize.cc.o" "gcc" "src/index/CMakeFiles/netout_index.dir/serialize.cc.o.d"
  "/root/repo/src/index/spm_index.cc" "src/index/CMakeFiles/netout_index.dir/spm_index.cc.o" "gcc" "src/index/CMakeFiles/netout_index.dir/spm_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/metapath/CMakeFiles/netout_metapath.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/netout_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/netout_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
