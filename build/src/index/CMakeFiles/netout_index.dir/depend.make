# Empty dependencies file for netout_index.
# This may be replaced when dependencies are built.
