file(REMOVE_RECURSE
  "libnetout_index.a"
)
