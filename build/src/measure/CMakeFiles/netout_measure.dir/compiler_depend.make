# Empty compiler generated dependencies file for netout_measure.
# This may be replaced when dependencies are built.
