
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/measure/connectivity.cc" "src/measure/CMakeFiles/netout_measure.dir/connectivity.cc.o" "gcc" "src/measure/CMakeFiles/netout_measure.dir/connectivity.cc.o.d"
  "/root/repo/src/measure/explain.cc" "src/measure/CMakeFiles/netout_measure.dir/explain.cc.o" "gcc" "src/measure/CMakeFiles/netout_measure.dir/explain.cc.o.d"
  "/root/repo/src/measure/lof.cc" "src/measure/CMakeFiles/netout_measure.dir/lof.cc.o" "gcc" "src/measure/CMakeFiles/netout_measure.dir/lof.cc.o.d"
  "/root/repo/src/measure/scores.cc" "src/measure/CMakeFiles/netout_measure.dir/scores.cc.o" "gcc" "src/measure/CMakeFiles/netout_measure.dir/scores.cc.o.d"
  "/root/repo/src/measure/topk.cc" "src/measure/CMakeFiles/netout_measure.dir/topk.cc.o" "gcc" "src/measure/CMakeFiles/netout_measure.dir/topk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/metapath/CMakeFiles/netout_metapath.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/netout_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/netout_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
