file(REMOVE_RECURSE
  "libnetout_measure.a"
)
