file(REMOVE_RECURSE
  "CMakeFiles/netout_measure.dir/connectivity.cc.o"
  "CMakeFiles/netout_measure.dir/connectivity.cc.o.d"
  "CMakeFiles/netout_measure.dir/explain.cc.o"
  "CMakeFiles/netout_measure.dir/explain.cc.o.d"
  "CMakeFiles/netout_measure.dir/lof.cc.o"
  "CMakeFiles/netout_measure.dir/lof.cc.o.d"
  "CMakeFiles/netout_measure.dir/scores.cc.o"
  "CMakeFiles/netout_measure.dir/scores.cc.o.d"
  "CMakeFiles/netout_measure.dir/topk.cc.o"
  "CMakeFiles/netout_measure.dir/topk.cc.o.d"
  "libnetout_measure.a"
  "libnetout_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netout_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
