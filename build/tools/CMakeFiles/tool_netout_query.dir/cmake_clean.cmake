file(REMOVE_RECURSE
  "CMakeFiles/tool_netout_query.dir/netout_query.cc.o"
  "CMakeFiles/tool_netout_query.dir/netout_query.cc.o.d"
  "netout_query"
  "netout_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_netout_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
