# Empty dependencies file for tool_netout_query.
# This may be replaced when dependencies are built.
