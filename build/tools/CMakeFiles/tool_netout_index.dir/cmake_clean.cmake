file(REMOVE_RECURSE
  "CMakeFiles/tool_netout_index.dir/netout_index.cc.o"
  "CMakeFiles/tool_netout_index.dir/netout_index.cc.o.d"
  "netout_index"
  "netout_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_netout_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
