# Empty compiler generated dependencies file for tool_netout_index.
# This may be replaced when dependencies are built.
