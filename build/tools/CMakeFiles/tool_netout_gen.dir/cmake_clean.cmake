file(REMOVE_RECURSE
  "CMakeFiles/tool_netout_gen.dir/netout_gen.cc.o"
  "CMakeFiles/tool_netout_gen.dir/netout_gen.cc.o.d"
  "netout_gen"
  "netout_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_netout_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
