# Empty dependencies file for tool_netout_gen.
# This may be replaced when dependencies are built.
