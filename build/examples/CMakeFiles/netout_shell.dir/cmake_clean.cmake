file(REMOVE_RECURSE
  "CMakeFiles/netout_shell.dir/netout_shell.cpp.o"
  "CMakeFiles/netout_shell.dir/netout_shell.cpp.o.d"
  "netout_shell"
  "netout_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netout_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
