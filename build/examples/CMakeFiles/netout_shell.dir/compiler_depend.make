# Empty compiler generated dependencies file for netout_shell.
# This may be replaced when dependencies are built.
