add_test([=[SampleDataTest.Figure1ExampleLoadsAndMatchesThePaper]=]  /root/repo/build/tests/graph_sample_data_test [==[--gtest_filter=SampleDataTest.Figure1ExampleLoadsAndMatchesThePaper]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[SampleDataTest.Figure1ExampleLoadsAndMatchesThePaper]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  graph_sample_data_test_TESTS SampleDataTest.Figure1ExampleLoadsAndMatchesThePaper)
