file(REMOVE_RECURSE
  "CMakeFiles/datagen_security_gen_test.dir/datagen/security_gen_test.cc.o"
  "CMakeFiles/datagen_security_gen_test.dir/datagen/security_gen_test.cc.o.d"
  "datagen_security_gen_test"
  "datagen_security_gen_test.pdb"
  "datagen_security_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datagen_security_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
