# Empty dependencies file for datagen_security_gen_test.
# This may be replaced when dependencies are built.
