file(REMOVE_RECURSE
  "CMakeFiles/measure_connectivity_test.dir/measure/connectivity_test.cc.o"
  "CMakeFiles/measure_connectivity_test.dir/measure/connectivity_test.cc.o.d"
  "measure_connectivity_test"
  "measure_connectivity_test.pdb"
  "measure_connectivity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_connectivity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
