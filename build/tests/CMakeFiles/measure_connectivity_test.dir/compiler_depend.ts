# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for measure_connectivity_test.
