# Empty dependencies file for measure_connectivity_test.
# This may be replaced when dependencies are built.
