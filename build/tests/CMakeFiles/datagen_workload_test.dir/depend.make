# Empty dependencies file for datagen_workload_test.
# This may be replaced when dependencies are built.
