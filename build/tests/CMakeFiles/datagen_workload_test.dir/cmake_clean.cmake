file(REMOVE_RECURSE
  "CMakeFiles/datagen_workload_test.dir/datagen/workload_test.cc.o"
  "CMakeFiles/datagen_workload_test.dir/datagen/workload_test.cc.o.d"
  "datagen_workload_test"
  "datagen_workload_test.pdb"
  "datagen_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datagen_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
