# Empty compiler generated dependencies file for query_suggest_test.
# This may be replaced when dependencies are built.
