file(REMOVE_RECURSE
  "CMakeFiles/query_suggest_test.dir/query/suggest_test.cc.o"
  "CMakeFiles/query_suggest_test.dir/query/suggest_test.cc.o.d"
  "query_suggest_test"
  "query_suggest_test.pdb"
  "query_suggest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_suggest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
