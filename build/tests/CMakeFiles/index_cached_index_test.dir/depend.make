# Empty dependencies file for index_cached_index_test.
# This may be replaced when dependencies are built.
