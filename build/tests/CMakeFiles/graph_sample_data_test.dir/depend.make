# Empty dependencies file for graph_sample_data_test.
# This may be replaced when dependencies are built.
