file(REMOVE_RECURSE
  "CMakeFiles/graph_sample_data_test.dir/graph/sample_data_test.cc.o"
  "CMakeFiles/graph_sample_data_test.dir/graph/sample_data_test.cc.o.d"
  "graph_sample_data_test"
  "graph_sample_data_test.pdb"
  "graph_sample_data_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_sample_data_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
