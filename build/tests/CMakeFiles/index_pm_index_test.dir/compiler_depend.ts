# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for index_pm_index_test.
