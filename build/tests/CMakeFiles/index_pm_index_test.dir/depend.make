# Empty dependencies file for index_pm_index_test.
# This may be replaced when dependencies are built.
