# Empty dependencies file for measure_lof_test.
# This may be replaced when dependencies are built.
