file(REMOVE_RECURSE
  "CMakeFiles/measure_lof_test.dir/measure/lof_test.cc.o"
  "CMakeFiles/measure_lof_test.dir/measure/lof_test.cc.o.d"
  "measure_lof_test"
  "measure_lof_test.pdb"
  "measure_lof_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_lof_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
