# Empty dependencies file for measure_netout_test.
# This may be replaced when dependencies are built.
