file(REMOVE_RECURSE
  "CMakeFiles/measure_netout_test.dir/measure/netout_test.cc.o"
  "CMakeFiles/measure_netout_test.dir/measure/netout_test.cc.o.d"
  "measure_netout_test"
  "measure_netout_test.pdb"
  "measure_netout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_netout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
