# Empty compiler generated dependencies file for common_binary_io_test.
# This may be replaced when dependencies are built.
