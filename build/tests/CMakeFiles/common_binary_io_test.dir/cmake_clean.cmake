file(REMOVE_RECURSE
  "CMakeFiles/common_binary_io_test.dir/common/binary_io_test.cc.o"
  "CMakeFiles/common_binary_io_test.dir/common/binary_io_test.cc.o.d"
  "common_binary_io_test"
  "common_binary_io_test.pdb"
  "common_binary_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_binary_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
