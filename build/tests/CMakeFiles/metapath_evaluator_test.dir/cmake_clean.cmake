file(REMOVE_RECURSE
  "CMakeFiles/metapath_evaluator_test.dir/metapath/evaluator_test.cc.o"
  "CMakeFiles/metapath_evaluator_test.dir/metapath/evaluator_test.cc.o.d"
  "metapath_evaluator_test"
  "metapath_evaluator_test.pdb"
  "metapath_evaluator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metapath_evaluator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
