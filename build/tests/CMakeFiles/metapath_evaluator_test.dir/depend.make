# Empty dependencies file for metapath_evaluator_test.
# This may be replaced when dependencies are built.
