# Empty dependencies file for index_serialize_test.
# This may be replaced when dependencies are built.
