file(REMOVE_RECURSE
  "CMakeFiles/query_describe_test.dir/query/describe_test.cc.o"
  "CMakeFiles/query_describe_test.dir/query/describe_test.cc.o.d"
  "query_describe_test"
  "query_describe_test.pdb"
  "query_describe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_describe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
