# Empty dependencies file for metapath_matrix_test.
# This may be replaced when dependencies are built.
