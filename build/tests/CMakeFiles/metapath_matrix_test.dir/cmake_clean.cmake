file(REMOVE_RECURSE
  "CMakeFiles/metapath_matrix_test.dir/metapath/matrix_test.cc.o"
  "CMakeFiles/metapath_matrix_test.dir/metapath/matrix_test.cc.o.d"
  "metapath_matrix_test"
  "metapath_matrix_test.pdb"
  "metapath_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metapath_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
