# Empty compiler generated dependencies file for query_analyzer_test.
# This may be replaced when dependencies are built.
