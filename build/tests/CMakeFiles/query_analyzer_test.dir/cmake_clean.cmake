file(REMOVE_RECURSE
  "CMakeFiles/query_analyzer_test.dir/query/analyzer_test.cc.o"
  "CMakeFiles/query_analyzer_test.dir/query/analyzer_test.cc.o.d"
  "query_analyzer_test"
  "query_analyzer_test.pdb"
  "query_analyzer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_analyzer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
