# Empty dependencies file for query_engine_options_test.
# This may be replaced when dependencies are built.
