file(REMOVE_RECURSE
  "CMakeFiles/measure_topk_test.dir/measure/topk_test.cc.o"
  "CMakeFiles/measure_topk_test.dir/measure/topk_test.cc.o.d"
  "measure_topk_test"
  "measure_topk_test.pdb"
  "measure_topk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_topk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
