# Empty dependencies file for measure_topk_test.
# This may be replaced when dependencies are built.
