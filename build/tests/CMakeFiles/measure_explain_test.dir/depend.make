# Empty dependencies file for measure_explain_test.
# This may be replaced when dependencies are built.
