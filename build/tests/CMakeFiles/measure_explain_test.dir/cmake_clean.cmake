file(REMOVE_RECURSE
  "CMakeFiles/measure_explain_test.dir/measure/explain_test.cc.o"
  "CMakeFiles/measure_explain_test.dir/measure/explain_test.cc.o.d"
  "measure_explain_test"
  "measure_explain_test.pdb"
  "measure_explain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_explain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
