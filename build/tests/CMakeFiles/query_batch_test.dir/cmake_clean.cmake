file(REMOVE_RECURSE
  "CMakeFiles/query_batch_test.dir/query/batch_test.cc.o"
  "CMakeFiles/query_batch_test.dir/query/batch_test.cc.o.d"
  "query_batch_test"
  "query_batch_test.pdb"
  "query_batch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_batch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
