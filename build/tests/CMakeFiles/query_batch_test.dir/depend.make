# Empty dependencies file for query_batch_test.
# This may be replaced when dependencies are built.
