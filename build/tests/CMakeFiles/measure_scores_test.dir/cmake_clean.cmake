file(REMOVE_RECURSE
  "CMakeFiles/measure_scores_test.dir/measure/scores_test.cc.o"
  "CMakeFiles/measure_scores_test.dir/measure/scores_test.cc.o.d"
  "measure_scores_test"
  "measure_scores_test.pdb"
  "measure_scores_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_scores_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
