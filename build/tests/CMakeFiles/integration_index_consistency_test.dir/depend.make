# Empty dependencies file for integration_index_consistency_test.
# This may be replaced when dependencies are built.
