file(REMOVE_RECURSE
  "CMakeFiles/integration_index_consistency_test.dir/integration/index_consistency_test.cc.o"
  "CMakeFiles/integration_index_consistency_test.dir/integration/index_consistency_test.cc.o.d"
  "integration_index_consistency_test"
  "integration_index_consistency_test.pdb"
  "integration_index_consistency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_index_consistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
