file(REMOVE_RECURSE
  "CMakeFiles/metapath_metapath_test.dir/metapath/metapath_test.cc.o"
  "CMakeFiles/metapath_metapath_test.dir/metapath/metapath_test.cc.o.d"
  "metapath_metapath_test"
  "metapath_metapath_test.pdb"
  "metapath_metapath_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metapath_metapath_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
