file(REMOVE_RECURSE
  "CMakeFiles/integration_set_algebra_test.dir/integration/set_algebra_test.cc.o"
  "CMakeFiles/integration_set_algebra_test.dir/integration/set_algebra_test.cc.o.d"
  "integration_set_algebra_test"
  "integration_set_algebra_test.pdb"
  "integration_set_algebra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_set_algebra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
