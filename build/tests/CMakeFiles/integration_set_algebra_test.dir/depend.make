# Empty dependencies file for integration_set_algebra_test.
# This may be replaced when dependencies are built.
