# Empty dependencies file for metapath_sparse_vector_test.
# This may be replaced when dependencies are built.
