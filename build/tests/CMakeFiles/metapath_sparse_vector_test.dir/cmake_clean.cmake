file(REMOVE_RECURSE
  "CMakeFiles/metapath_sparse_vector_test.dir/metapath/sparse_vector_test.cc.o"
  "CMakeFiles/metapath_sparse_vector_test.dir/metapath/sparse_vector_test.cc.o.d"
  "metapath_sparse_vector_test"
  "metapath_sparse_vector_test.pdb"
  "metapath_sparse_vector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metapath_sparse_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
