# Empty compiler generated dependencies file for query_joint_combine_test.
# This may be replaced when dependencies are built.
