file(REMOVE_RECURSE
  "CMakeFiles/query_joint_combine_test.dir/query/joint_combine_test.cc.o"
  "CMakeFiles/query_joint_combine_test.dir/query/joint_combine_test.cc.o.d"
  "query_joint_combine_test"
  "query_joint_combine_test.pdb"
  "query_joint_combine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_joint_combine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
