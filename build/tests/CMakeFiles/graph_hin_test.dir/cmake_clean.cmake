file(REMOVE_RECURSE
  "CMakeFiles/graph_hin_test.dir/graph/hin_test.cc.o"
  "CMakeFiles/graph_hin_test.dir/graph/hin_test.cc.o.d"
  "graph_hin_test"
  "graph_hin_test.pdb"
  "graph_hin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_hin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
