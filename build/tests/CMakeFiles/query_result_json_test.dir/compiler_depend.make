# Empty compiler generated dependencies file for query_result_json_test.
# This may be replaced when dependencies are built.
