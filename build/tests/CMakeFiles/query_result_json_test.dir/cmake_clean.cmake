file(REMOVE_RECURSE
  "CMakeFiles/query_result_json_test.dir/query/result_json_test.cc.o"
  "CMakeFiles/query_result_json_test.dir/query/result_json_test.cc.o.d"
  "query_result_json_test"
  "query_result_json_test.pdb"
  "query_result_json_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_result_json_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
