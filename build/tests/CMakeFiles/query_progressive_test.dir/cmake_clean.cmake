file(REMOVE_RECURSE
  "CMakeFiles/query_progressive_test.dir/query/progressive_test.cc.o"
  "CMakeFiles/query_progressive_test.dir/query/progressive_test.cc.o.d"
  "query_progressive_test"
  "query_progressive_test.pdb"
  "query_progressive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_progressive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
