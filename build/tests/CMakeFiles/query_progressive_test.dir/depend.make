# Empty dependencies file for query_progressive_test.
# This may be replaced when dependencies are built.
