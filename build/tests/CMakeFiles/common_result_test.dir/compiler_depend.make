# Empty compiler generated dependencies file for common_result_test.
# This may be replaced when dependencies are built.
