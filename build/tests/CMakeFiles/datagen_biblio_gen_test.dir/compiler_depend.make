# Empty compiler generated dependencies file for datagen_biblio_gen_test.
# This may be replaced when dependencies are built.
