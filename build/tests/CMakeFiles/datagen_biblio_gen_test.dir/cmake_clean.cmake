file(REMOVE_RECURSE
  "CMakeFiles/datagen_biblio_gen_test.dir/datagen/biblio_gen_test.cc.o"
  "CMakeFiles/datagen_biblio_gen_test.dir/datagen/biblio_gen_test.cc.o.d"
  "datagen_biblio_gen_test"
  "datagen_biblio_gen_test.pdb"
  "datagen_biblio_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datagen_biblio_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
