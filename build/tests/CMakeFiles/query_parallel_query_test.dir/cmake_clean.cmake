file(REMOVE_RECURSE
  "CMakeFiles/query_parallel_query_test.dir/query/parallel_query_test.cc.o"
  "CMakeFiles/query_parallel_query_test.dir/query/parallel_query_test.cc.o.d"
  "query_parallel_query_test"
  "query_parallel_query_test.pdb"
  "query_parallel_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_parallel_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
