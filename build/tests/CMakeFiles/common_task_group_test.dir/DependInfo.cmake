
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/task_group_test.cc" "tests/CMakeFiles/common_task_group_test.dir/common/task_group_test.cc.o" "gcc" "tests/CMakeFiles/common_task_group_test.dir/common/task_group_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/netout_query.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/netout_index.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/netout_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/netout_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/metapath/CMakeFiles/netout_metapath.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/netout_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/netout_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
