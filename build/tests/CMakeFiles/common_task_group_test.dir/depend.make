# Empty dependencies file for common_task_group_test.
# This may be replaced when dependencies are built.
