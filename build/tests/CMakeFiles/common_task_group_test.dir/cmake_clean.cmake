file(REMOVE_RECURSE
  "CMakeFiles/common_task_group_test.dir/common/task_group_test.cc.o"
  "CMakeFiles/common_task_group_test.dir/common/task_group_test.cc.o.d"
  "common_task_group_test"
  "common_task_group_test.pdb"
  "common_task_group_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_task_group_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
