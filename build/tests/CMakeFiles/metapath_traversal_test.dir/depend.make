# Empty dependencies file for metapath_traversal_test.
# This may be replaced when dependencies are built.
