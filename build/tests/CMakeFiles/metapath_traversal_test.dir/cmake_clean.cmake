file(REMOVE_RECURSE
  "CMakeFiles/metapath_traversal_test.dir/metapath/traversal_test.cc.o"
  "CMakeFiles/metapath_traversal_test.dir/metapath/traversal_test.cc.o.d"
  "metapath_traversal_test"
  "metapath_traversal_test.pdb"
  "metapath_traversal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metapath_traversal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
