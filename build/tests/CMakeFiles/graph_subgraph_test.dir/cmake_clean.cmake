file(REMOVE_RECURSE
  "CMakeFiles/graph_subgraph_test.dir/graph/subgraph_test.cc.o"
  "CMakeFiles/graph_subgraph_test.dir/graph/subgraph_test.cc.o.d"
  "graph_subgraph_test"
  "graph_subgraph_test.pdb"
  "graph_subgraph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_subgraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
