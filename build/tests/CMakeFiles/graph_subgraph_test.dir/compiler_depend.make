# Empty compiler generated dependencies file for graph_subgraph_test.
# This may be replaced when dependencies are built.
