file(REMOVE_RECURSE
  "CMakeFiles/graph_import_test.dir/graph/import_test.cc.o"
  "CMakeFiles/graph_import_test.dir/graph/import_test.cc.o.d"
  "graph_import_test"
  "graph_import_test.pdb"
  "graph_import_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_import_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
