# Empty dependencies file for graph_import_test.
# This may be replaced when dependencies are built.
