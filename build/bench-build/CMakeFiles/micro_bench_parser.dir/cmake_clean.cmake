file(REMOVE_RECURSE
  "../bench/micro_bench_parser"
  "../bench/micro_bench_parser.pdb"
  "CMakeFiles/micro_bench_parser.dir/micro/bench_parser.cc.o"
  "CMakeFiles/micro_bench_parser.dir/micro/bench_parser.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_bench_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
