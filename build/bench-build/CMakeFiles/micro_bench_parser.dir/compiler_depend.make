# Empty compiler generated dependencies file for micro_bench_parser.
# This may be replaced when dependencies are built.
