file(REMOVE_RECURSE
  "../bench/bench_fig3_efficiency"
  "../bench/bench_fig3_efficiency.pdb"
  "CMakeFiles/bench_fig3_efficiency.dir/bench_fig3_efficiency.cc.o"
  "CMakeFiles/bench_fig3_efficiency.dir/bench_fig3_efficiency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
