# Empty dependencies file for bench_table3_measures.
# This may be replaced when dependencies are built.
