file(REMOVE_RECURSE
  "../bench/bench_table3_measures"
  "../bench/bench_table3_measures.pdb"
  "CMakeFiles/bench_table3_measures.dir/bench_table3_measures.cc.o"
  "CMakeFiles/bench_table3_measures.dir/bench_table3_measures.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_measures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
