# Empty compiler generated dependencies file for micro_bench_batch.
# This may be replaced when dependencies are built.
