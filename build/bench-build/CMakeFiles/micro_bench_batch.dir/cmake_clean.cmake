file(REMOVE_RECURSE
  "../bench/micro_bench_batch"
  "../bench/micro_bench_batch.pdb"
  "CMakeFiles/micro_bench_batch.dir/micro/bench_batch.cc.o"
  "CMakeFiles/micro_bench_batch.dir/micro/bench_batch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_bench_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
