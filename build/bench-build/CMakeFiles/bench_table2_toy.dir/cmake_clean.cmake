file(REMOVE_RECURSE
  "../bench/bench_table2_toy"
  "../bench/bench_table2_toy.pdb"
  "CMakeFiles/bench_table2_toy.dir/bench_table2_toy.cc.o"
  "CMakeFiles/bench_table2_toy.dir/bench_table2_toy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_toy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
