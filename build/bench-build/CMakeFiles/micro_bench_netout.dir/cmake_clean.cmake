file(REMOVE_RECURSE
  "../bench/micro_bench_netout"
  "../bench/micro_bench_netout.pdb"
  "CMakeFiles/micro_bench_netout.dir/micro/bench_netout.cc.o"
  "CMakeFiles/micro_bench_netout.dir/micro/bench_netout.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_bench_netout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
