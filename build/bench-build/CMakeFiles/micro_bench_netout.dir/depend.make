# Empty dependencies file for micro_bench_netout.
# This may be replaced when dependencies are built.
