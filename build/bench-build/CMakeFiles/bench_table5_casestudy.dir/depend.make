# Empty dependencies file for bench_table5_casestudy.
# This may be replaced when dependencies are built.
