file(REMOVE_RECURSE
  "../bench/bench_table5_casestudy"
  "../bench/bench_table5_casestudy.pdb"
  "CMakeFiles/bench_table5_casestudy.dir/bench_table5_casestudy.cc.o"
  "CMakeFiles/bench_table5_casestudy.dir/bench_table5_casestudy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
