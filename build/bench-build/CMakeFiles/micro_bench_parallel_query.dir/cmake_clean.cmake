file(REMOVE_RECURSE
  "../bench/micro_bench_parallel_query"
  "../bench/micro_bench_parallel_query.pdb"
  "CMakeFiles/micro_bench_parallel_query.dir/micro/bench_parallel_query.cc.o"
  "CMakeFiles/micro_bench_parallel_query.dir/micro/bench_parallel_query.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_bench_parallel_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
