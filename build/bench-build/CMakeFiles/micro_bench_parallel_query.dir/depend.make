# Empty dependencies file for micro_bench_parallel_query.
# This may be replaced when dependencies are built.
