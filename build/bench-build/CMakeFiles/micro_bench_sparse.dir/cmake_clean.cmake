file(REMOVE_RECURSE
  "../bench/micro_bench_sparse"
  "../bench/micro_bench_sparse.pdb"
  "CMakeFiles/micro_bench_sparse.dir/micro/bench_sparse.cc.o"
  "CMakeFiles/micro_bench_sparse.dir/micro/bench_sparse.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_bench_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
