# Empty dependencies file for micro_bench_sparse.
# This may be replaced when dependencies are built.
