file(REMOVE_RECURSE
  "../bench/micro_bench_traversal"
  "../bench/micro_bench_traversal.pdb"
  "CMakeFiles/micro_bench_traversal.dir/micro/bench_traversal.cc.o"
  "CMakeFiles/micro_bench_traversal.dir/micro/bench_traversal.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_bench_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
