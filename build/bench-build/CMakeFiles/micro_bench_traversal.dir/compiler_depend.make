# Empty compiler generated dependencies file for micro_bench_traversal.
# This may be replaced when dependencies are built.
