file(REMOVE_RECURSE
  "../bench/bench_fig5_threshold"
  "../bench/bench_fig5_threshold.pdb"
  "CMakeFiles/bench_fig5_threshold.dir/bench_fig5_threshold.cc.o"
  "CMakeFiles/bench_fig5_threshold.dir/bench_fig5_threshold.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
